// Tests of the async serving front end: every admitted, non-expired
// request must come back bit-identical to a direct
// RetrievalBackend::Retrieve — over both engines, multiple worker counts
// and batch shapes, and randomized multi-threaded submit interleavings —
// and every rejected/shed/expired/cancelled request must surface the
// right status code.  Nothing is ever silently dropped.  Admission is
// strict-priority (high dequeues first, low sheds first) with per-tenant
// quotas, asserted deterministically below.
#include "src/server/async_retrieval_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace qse {
namespace {

using namespace std::chrono_literals;

/// One workload shared by all server tests: plane points under L2,
/// FastMap-embedded, served monolithic and sharded.
struct ServingStack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  RetrievalEngine mono;
  ShardedRetrievalEngine sharded;

  static FastMapModel BuildModel(const ObjectOracle<Vector>& oracle,
                                 const std::vector<size_t>& db_ids) {
    FastMapOptions options;
    options.dims = 3;
    return BuildFastMap(oracle, db_ids, options);
  }

  static ShardedEngineOptions ShardOptions() {
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.scatter_threads = 1;
    return options;
  }

  explicit ServingStack(size_t n_db = 60, size_t n_query = 10,
                        uint64_t seed = 41)
      : oracle(test::MakePlaneOracle(n_db + n_query, seed)),
        db_ids(test::Iota(n_db)),
        query_ids(test::Iota(n_query, n_db)),
        model(BuildModel(oracle, db_ids)),
        db(EmbedDatabase(model, oracle, db_ids)),
        mono(&model, &scorer, &db, db_ids),
        sharded(&model, &scorer, db, db_ids, ShardOptions()) {}

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [this, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  }
};

void ExpectSameResult(const RetrievalResponse& want,
                      const RetrievalResponse& got,
                      const std::string& context) {
  EXPECT_EQ(want.exact_distances, got.exact_distances) << context;
  EXPECT_EQ(want.embedding_distances, got.embedding_distances) << context;
  ASSERT_EQ(want.neighbors.size(), got.neighbors.size()) << context;
  for (size_t i = 0; i < want.neighbors.size(); ++i) {
    EXPECT_EQ(want.neighbors[i].index, got.neighbors[i].index)
        << context << " i=" << i;
    EXPECT_EQ(want.neighbors[i].score, got.neighbors[i].score)
        << context << " i=" << i;
  }
}

/// A dx wrapper that blocks inside the backend until released — pins a
/// worker deterministically so queueing behavior can be observed.
struct WorkerGate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<size_t> entered{0};

  DxToDatabaseFn Gated(DxToDatabaseFn inner) {
    return [this, inner](size_t id) {
      if (entered.fetch_add(1) == 0) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return released; });
      }
      return inner(id);
    };
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

/// Pins the single worker with a gated request and then stuffs the
/// batcher + dispatch pipeline with `plugs` sacrificial requests, so
/// every subsequent Submit stays in the admission queue until the gate
/// releases.  Requires max_batch = 1 and num_workers = 1.  Waits until
/// the admission queue is observably empty again.
struct PinnedPipeline {
  WorkerGate gate;
  Future<StatusOr<RetrievalResponse>> gated;
  std::vector<Future<StatusOr<RetrievalResponse>>> plugs;

  PinnedPipeline(AsyncRetrievalServer* server, const ServingStack& s,
                 RetrievalOptions options, size_t num_plugs = 2) {
    gated = server->Submit({gate.Gated(s.QueryDx(s.query_ids[0])), options});
    while (gate.entered.load() == 0) std::this_thread::sleep_for(1ms);
    for (size_t i = 0; i < num_plugs; ++i) {
      plugs.push_back(server->Submit({s.QueryDx(s.query_ids[1]), options}));
    }
    // The batcher parks one plug in the dispatch queue and holds the
    // other in hand, blocked; wait until the admission queue drains so
    // later submits deterministically queue behind the pinned pipeline.
    while (server->stats().queue_depth > 0) std::this_thread::sleep_for(1ms);
  }
};

// --- The tentpole guarantee: bit-identical to direct Retrieve ----------

TEST(AsyncServerParityTest, RandomizedInterleavingsOverBothEngines) {
  ServingStack s;
  const size_t k = 3;
  struct Backend {
    const char* name;
    const RetrievalBackend* backend;
  };
  const Backend backends[] = {{"mono", &s.mono}, {"sharded", &s.sharded}};

  for (const Backend& b : backends) {
    for (size_t num_workers : {1u, 2u, 4u}) {
      for (size_t max_batch : {1u, 8u}) {
        AsyncServerOptions options;
        options.num_workers = num_workers;
        options.max_batch = max_batch;
        options.retrieve_threads = 1;
        options.queue_capacity = 256;
        AsyncRetrievalServer server(b.backend, options);

        // 3 submitter threads, each submitting every query at a shuffled
        // (query, p) order with jittered pacing and a rotating priority:
        // the admission queue sees a different interleaving every
        // config, and lanes must not change any result.
        struct Expectation {
          size_t query_id;
          size_t p;
          Future<StatusOr<RetrievalResponse>> future;
        };
        std::mutex mu;
        std::vector<Expectation> pending;
        std::vector<std::thread> submitters;
        for (size_t t = 0; t < 3; ++t) {
          submitters.emplace_back([&, t] {
            Rng rng(1000 * num_workers + 100 * max_batch + t);
            std::vector<std::pair<size_t, size_t>> work;
            for (size_t query_id : s.query_ids) {
              for (size_t p : {size_t{1}, size_t{7}, s.db_ids.size()}) {
                work.emplace_back(query_id, p);
              }
            }
            for (size_t i = work.size(); i > 1; --i) {
              std::swap(work[i - 1], work[rng.UniformInt(0, i - 1)]);
            }
            size_t seq = 0;
            for (const auto& [query_id, p] : work) {
              RetrievalOptions ro(k, p);
              ro.priority = static_cast<RequestPriority>(seq++ % 3);
              auto future = server.Submit({s.QueryDx(query_id), ro});
              {
                std::lock_guard<std::mutex> lock(mu);
                pending.push_back({query_id, p, std::move(future)});
              }
              if (rng.UniformInt(0, 3) == 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(rng.UniformInt(0, 200)));
              }
            }
          });
        }
        for (auto& t : submitters) t.join();
        server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);

        for (const Expectation& e : pending) {
          auto want = b.backend->Retrieve(
              {s.QueryDx(e.query_id), RetrievalOptions(k, e.p)});
          ASSERT_TRUE(want.ok());
          const StatusOr<RetrievalResponse>& got = e.future.Get();
          ASSERT_TRUE(got.ok()) << got.status();
          ExpectSameResult(*want, *got,
                           std::string(b.name) +
                               " workers=" + std::to_string(num_workers) +
                               " max_batch=" + std::to_string(max_batch) +
                               " q=" + std::to_string(e.query_id) +
                               " p=" + std::to_string(e.p));
        }
        ServerStats stats = server.stats();
        EXPECT_EQ(stats.submitted, pending.size());
        EXPECT_EQ(stats.admitted, pending.size());
        EXPECT_EQ(stats.completed, pending.size());
        EXPECT_EQ(stats.rejected, 0u);
        EXPECT_EQ(stats.shed, 0u);
        EXPECT_EQ(stats.expired, 0u);
        EXPECT_EQ(stats.cancelled, 0u);
        size_t lane_submitted = 0, lane_completed = 0;
        for (const LaneStats& lane : stats.lanes) {
          lane_submitted += lane.submitted;
          lane_completed += lane.completed;
        }
        EXPECT_EQ(lane_submitted, pending.size());
        EXPECT_EQ(lane_completed, pending.size());
      }
    }
  }
}

TEST(AsyncServerParityTest, BlockingRetrieveMatchesBackend) {
  ServingStack s;
  AsyncRetrievalServer server(&s.mono);
  auto want =
      s.mono.Retrieve({s.QueryDx(s.query_ids[0]), RetrievalOptions(2, 10)});
  auto got =
      server.Retrieve({s.QueryDx(s.query_ids[0]), RetrievalOptions(2, 10)});
  ASSERT_TRUE(want.ok() && got.ok());
  ExpectSameResult(*want, *got, "blocking");
}

TEST(AsyncServerParityTest, MixedOptionsInOneBurstStayExact) {
  // Requests with different (k, p, want_stats) coalesce into the same
  // micro-batch but must execute as separate backend groups; priority
  // and deadline do not split groups (they don't change results).
  ServingStack s;
  AsyncServerOptions options;
  options.max_batch = 16;
  options.max_batch_delay = 20ms;  // Force coalescing of the whole burst.
  AsyncRetrievalServer server(&s.sharded, options);
  struct Case {
    size_t query_id;
    RetrievalOptions ro;
    Future<StatusOr<RetrievalResponse>> future;
  };
  std::vector<Case> cases;
  size_t i = 0;
  for (size_t query_id : s.query_ids) {
    RetrievalOptions ro(1 + i % 3, 5 + 7 * (i % 2));
    ro.want_stats = i % 4 == 0;
    ro.priority = static_cast<RequestPriority>(i % 3);
    ro.deadline = RetrievalOptions::DeadlineIn(10s);
    cases.push_back({query_id, ro, server.Submit({s.QueryDx(query_id), ro})});
    ++i;
  }
  for (Case& c : cases) {
    auto want = s.sharded.Retrieve({s.QueryDx(c.query_id), c.ro});
    ASSERT_TRUE(want.ok());
    const auto& got = c.future.Get();
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectSameResult(*want, *got, "mixed q=" + std::to_string(c.query_id));
    ASSERT_EQ(got->shard_stats.size(), want->shard_stats.size());
    for (size_t sh = 0; sh < got->shard_stats.size(); ++sh) {
      EXPECT_EQ(got->shard_stats[sh].rows, want->shard_stats[sh].rows);
      EXPECT_EQ(got->shard_stats[sh].candidates,
                want->shard_stats[sh].candidates);
    }
    if (c.ro.want_stats) {
      EXPECT_EQ(got->shard_stats.size(), s.sharded.num_shards());
    } else {
      EXPECT_TRUE(got->shard_stats.empty());
    }
  }
}

// --- Admission control --------------------------------------------------

TEST(AsyncServerTest, OverflowRejectsWithResourceExhausted) {
  ServingStack s;
  AsyncServerOptions options;
  options.queue_capacity = 2;
  options.max_batch = 1;
  options.num_workers = 1;
  AsyncRetrievalServer server(&s.mono, options);

  WorkerGate gate;
  RetrievalOptions ro(1, 5);
  // First request pins the single worker inside the backend; the pipeline
  // (batcher + dispatch slot) and then the 2-slot admission queue fill up
  // behind it.  Same-priority traffic cannot shed itself, so overflow
  // refuses the incoming request.
  auto gated =
      server.Submit({gate.Gated(s.QueryDx(s.query_ids[0])), ro});
  std::vector<Future<StatusOr<RetrievalResponse>>> rest;
  const size_t kExtra = 12;
  for (size_t i = 0; i < kExtra; ++i) {
    rest.push_back(server.Submit({s.QueryDx(s.query_ids[1]), ro}));
    std::this_thread::sleep_for(2ms);  // Let the batcher drain what it can.
  }
  size_t rejected = 0;
  for (const auto& f : rest) {
    if (f.ready() && !f.Get().ok()) {
      EXPECT_EQ(f.Get().status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u) << "a 2-slot queue must shed a 12-request burst";
  EXPECT_EQ(server.stats().rejected, rejected);

  gate.Release();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  // Everyone admitted completed fine; everyone rejected saw the status.
  ASSERT_TRUE(gated.Get().ok());
  auto want =
      s.mono.Retrieve({s.QueryDx(s.query_ids[1]), RetrievalOptions(1, 5)});
  ASSERT_TRUE(want.ok());
  for (const auto& f : rest) {
    const auto& got = f.Get();
    if (got.ok()) {
      ExpectSameResult(*want, *got, "admitted after overflow");
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
    }
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed);
  EXPECT_EQ(stats.shed, 0u);  // Same-priority overflow never evicts.
}

// --- Priority lanes -----------------------------------------------------

TEST(AsyncServerPriorityTest, HighLaneDequeuesFirst) {
  ServingStack s;
  AsyncServerOptions options;
  options.queue_capacity = 64;
  options.max_batch = 1;  // One request per batch: pop order observable.
  options.num_workers = 1;
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions base(1, 5);
  PinnedPipeline pinned(&server, s, base);

  // With the pipeline pinned, queue a mixed burst: low first so FIFO
  // order alone would serve it first, then high, then normal.
  std::mutex mu;
  std::vector<size_t> completion_lanes;
  auto tracked = [&](RequestPriority priority) {
    RetrievalOptions ro = base;
    ro.priority = priority;
    server.Submit({s.QueryDx(s.query_ids[2]), ro})
        .OnReady([&mu, &completion_lanes,
                  priority](const StatusOr<RetrievalResponse>& r) {
          ASSERT_TRUE(r.ok()) << r.status();
          std::lock_guard<std::mutex> lock(mu);
          completion_lanes.push_back(static_cast<size_t>(priority));
        });
  };
  for (size_t i = 0; i < 6; ++i) tracked(RequestPriority::kLow);
  for (size_t i = 0; i < 4; ++i) tracked(RequestPriority::kHigh);
  for (size_t i = 0; i < 2; ++i) tracked(RequestPriority::kNormal);

  pinned.gate.Release();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);

  // Strict priority: every high completes before every normal, every
  // normal before every low — despite the lows being submitted first.
  std::vector<size_t> expected = {0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 2};
  EXPECT_EQ(completion_lanes, expected);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.lanes[0].completed, 4u);
  EXPECT_EQ(stats.lanes[1].completed, 2u + 3u);  // + gated and plugs.
  EXPECT_EQ(stats.lanes[2].completed, 6u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(AsyncServerPriorityTest, OverflowShedsLowestLaneFirst) {
  ServingStack s;
  AsyncServerOptions options;
  options.queue_capacity = 4;
  options.max_batch = 1;
  options.num_workers = 1;
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions base(1, 5);
  PinnedPipeline pinned(&server, s, base);

  RetrievalOptions low = base;
  low.priority = RequestPriority::kLow;
  RetrievalOptions high = base;
  high.priority = RequestPriority::kHigh;

  // Fill the 4-slot queue with low-priority work.
  std::vector<Future<StatusOr<RetrievalResponse>>> lows;
  for (size_t i = 0; i < 4; ++i) {
    lows.push_back(server.Submit({s.QueryDx(s.query_ids[2]), low}));
  }
  for (const auto& f : lows) EXPECT_FALSE(f.ready());

  // High arrivals evict lows youngest-first — the victim is always the
  // most recent admission, the one with the least queueing sunk into it.
  // One high at a time pins the order: the first sheds lows[3] and only
  // lows[3]; the second sheds lows[2].
  std::vector<Future<StatusOr<RetrievalResponse>>> highs;
  highs.push_back(server.Submit({s.QueryDx(s.query_ids[3]), high}));
  ASSERT_TRUE(lows[3].ready());
  EXPECT_FALSE(lows[2].ready());
  highs.push_back(server.Submit({s.QueryDx(s.query_ids[3]), high}));
  ASSERT_TRUE(lows[2].ready());
  EXPECT_EQ(lows[3].Get().status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(lows[3].Get().status().message().find("shed"),
            std::string::npos);
  EXPECT_FALSE(lows[0].ready());
  EXPECT_FALSE(lows[1].ready());

  // Two more highs evict the remaining lows; a fifth finds nothing
  // below it and is refused itself (a different message: not shed).
  for (size_t i = 0; i < 2; ++i) {
    highs.push_back(server.Submit({s.QueryDx(s.query_ids[3]), high}));
  }
  auto refused = server.Submit({s.QueryDx(s.query_ids[3]), high});
  ASSERT_TRUE(refused.ready());
  EXPECT_EQ(refused.Get().status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.Get().status().message().find("queue full"),
            std::string::npos);

  ServerStats mid = server.stats();
  EXPECT_EQ(mid.shed, 4u);
  EXPECT_EQ(mid.lanes[2].shed, 4u);
  EXPECT_EQ(mid.lanes[0].shed, 0u);
  EXPECT_EQ(mid.rejected, 1u);

  pinned.gate.Release();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  for (const auto& f : highs) EXPECT_TRUE(f.Get().ok());
  ServerStats stats = server.stats();
  EXPECT_TRUE(CheckServerStatsInvariant(stats));
  EXPECT_EQ(stats.lanes[0].queue_depth, 0u);
}

// --- Tenant quotas ------------------------------------------------------

TEST(AsyncServerTenantTest, OverQuotaTenantRejectedWhileOthersAdmit) {
  ServingStack s;
  AsyncServerOptions options;
  options.queue_capacity = 16;
  options.max_batch = 1;
  options.num_workers = 1;
  options.tenant_quotas = {{"alpha", 0.5}, {"beta", 0.125}};
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions alpha(1, 5);
  alpha.tenant_id = "alpha";
  PinnedPipeline pinned(&server, s, alpha);

  RetrievalOptions beta(1, 5);
  beta.tenant_id = "beta";
  // beta's share: floor(0.125 * 16) = 2 queue slots.
  std::vector<Future<StatusOr<RetrievalResponse>>> betas;
  for (size_t i = 0; i < 4; ++i) {
    betas.push_back(server.Submit({s.QueryDx(s.query_ids[2]), beta}));
  }
  EXPECT_FALSE(betas[0].ready());
  EXPECT_FALSE(betas[1].ready());
  for (size_t i : {2u, 3u}) {
    ASSERT_TRUE(betas[i].ready()) << i;
    EXPECT_EQ(betas[i].Get().status().code(),
              StatusCode::kResourceExhausted);
    EXPECT_NE(betas[i].Get().status().message().find("quota"),
              std::string::npos);
  }

  // alpha (and the quota-free queue) still admits while beta is capped.
  std::vector<Future<StatusOr<RetrievalResponse>>> alphas;
  for (size_t i = 0; i < 3; ++i) {
    alphas.push_back(server.Submit({s.QueryDx(s.query_ids[3]), alpha}));
  }
  for (const auto& f : alphas) EXPECT_FALSE(f.ready());

  ServerStats mid = server.stats();
  ASSERT_EQ(mid.tenants.size(), 2u);
  EXPECT_EQ(mid.tenants[0].tenant_id, "alpha");
  EXPECT_EQ(mid.tenants[1].tenant_id, "beta");
  EXPECT_EQ(mid.tenants[1].limit, 2u);
  EXPECT_EQ(mid.tenants[1].admitted, 2u);
  EXPECT_EQ(mid.tenants[1].rejected, 2u);
  EXPECT_EQ(mid.tenants[0].rejected, 0u);

  pinned.gate.Release();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  for (const auto& f : alphas) EXPECT_TRUE(f.Get().ok());
  EXPECT_TRUE(betas[0].Get().ok());
  EXPECT_TRUE(betas[1].Get().ok());
}

TEST(AsyncServerTenantTest, QuotaFreesAsTenantWorkDrains) {
  // A tenant refused at its cap admits again once its queued work is
  // served: the quota caps occupancy, not lifetime request count.
  ServingStack s;
  AsyncServerOptions options;
  options.queue_capacity = 8;
  options.tenant_quotas = {{"solo", 0.125}};  // 1 slot.
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions solo(1, 5);
  solo.tenant_id = "solo";
  for (size_t round = 0; round < 3; ++round) {
    auto r = server.Retrieve({s.QueryDx(s.query_ids[round]), solo});
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.status();
  }
  ServerStats stats = server.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].admitted, 3u);
  EXPECT_EQ(stats.tenants[0].rejected, 0u);
}

// --- Deadlines ----------------------------------------------------------

TEST(AsyncServerTest, ExpiredInQueueGetsDeadlineExceededAtDequeue) {
  ServingStack s;
  AsyncRetrievalServer server(&s.mono);
  RetrievalOptions ro(1, 5);
  ro.deadline = RetrievalClock::now() - 1ms;  // Already dead on arrival.
  auto f = server.Submit({s.QueryDx(s.query_ids[0]), ro});
  const auto& got = f.Get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(got.status().message().find("admission queue"),
            std::string::npos);
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  EXPECT_EQ(server.stats().expired, 1u);
  EXPECT_EQ(server.stats().lanes[1].expired, 1u);  // kNormal lane.
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(AsyncServerTest, ExpiredInDispatchGetsDeadlineExceededBeforeRefine) {
  // Deadlines read MonotonicClock, so a fake clock expires the request
  // by decree instead of a 450ms real sleep: the worker stays pinned,
  // virtual time jumps past the deadline, and the pre-refine check
  // fires no matter how slow or fast the host is.  max_batch_delay is 0
  // here — the batcher never waits on real time — so faking the clock
  // cannot stall the pipeline.
  ScopedFakeClock fake;
  ServingStack s;
  AsyncServerOptions options;
  options.max_batch = 1;
  options.num_workers = 1;
  options.queue_capacity = 16;
  AsyncRetrievalServer server(&s.mono, options);

  WorkerGate gate;
  RetrievalOptions slow(1, 5);
  auto gated = server.Submit({gate.Gated(s.QueryDx(s.query_ids[0])), slow});
  // Wait until the worker is actually inside the backend, so the next
  // request is dequeued immediately and then waits in the dispatch
  // pipeline behind the pinned worker.
  while (gate.entered.load() == 0) std::this_thread::sleep_for(1ms);

  RetrievalOptions tight(1, 5);
  tight.deadline = RetrievalClock::now() + 200ms;
  RetrievalRequest doomed_req{s.QueryDx(s.query_ids[1]), tight};
#ifndef QSE_DISABLE_TRACING
  // A pre-attached trace makes the pipeline position observable: the
  // batcher stamps "batch_form" only after the dequeue-time deadline
  // check passed, so waiting for that span leaves no race between the
  // dequeue check and the clock advance below.
  auto trace = std::make_shared<obs::RequestTrace>();
  doomed_req.trace = trace;
#endif
  auto doomed = server.Submit(std::move(doomed_req));
#ifndef QSE_DISABLE_TRACING
  auto past_dequeue_check = [&] {
    for (const obs::TraceSpan& span : trace->spans()) {
      if (std::string(span.name) == "batch_form") return true;
    }
    return false;
  };
  while (!past_dequeue_check()) std::this_thread::sleep_for(1ms);
#else
  // Tracing compiled out: wait for the admission queue to drain, then
  // give the batcher a real-time moment to run the dequeue check it
  // performs right after popping.
  while (server.stats().queue_depth != 0) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(50ms);
#endif
  fake.clock().Advance(400ms);  // Deadline passes while pipelined.
  gate.Release();

  const auto& got = doomed.Get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(got.status().message().find("refine"), std::string::npos);
  ASSERT_TRUE(gated.Get().ok());
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  EXPECT_EQ(server.stats().expired, 1u);
}

// --- Adaptive micro-batching -------------------------------------------

TEST(AsyncServerTest, BatchingWindowCoalescesABurst) {
  ServingStack s;
  AsyncServerOptions options;
  options.max_batch = 5;
  // Wide window for slow hosts: dispatch happens the moment the 5th
  // request lands (max_batch reached), so the window's length only has
  // to cover the submission loop, not add latency.
  options.max_batch_delay = 250ms;
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions ro(1, 5);
  std::vector<Future<StatusOr<RetrievalResponse>>> futures;
  for (size_t i = 0; i < 5; ++i) {
    futures.push_back(server.Submit({s.QueryDx(s.query_ids[i]), ro}));
  }
  for (const auto& f : futures) EXPECT_TRUE(f.Get().ok());
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  // All five submitted within the window and max_batch == 5: exactly one
  // dispatched batch, of size 5.
  ServerStats stats = server.stats();
  ASSERT_EQ(stats.batch_size_histogram.size(), 5u);
  EXPECT_EQ(stats.batch_size_histogram[4], 1u);
  for (size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_EQ(stats.batch_size_histogram[i], 0u) << i;
  }
}

TEST(AsyncServerTest, GreedyBatchingGrowsUnderBacklogOnly) {
  // With no window, an idle server dispatches singletons; a backlog
  // behind a pinned worker coalesces.
  ServingStack s;
  AsyncServerOptions options;
  options.max_batch = 16;
  options.num_workers = 1;
  options.queue_capacity = 64;
  AsyncRetrievalServer server(&s.mono, options);

  RetrievalOptions ro(1, 5);
  // Idle phase: one at a time, waiting each out.
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        server.Retrieve({s.QueryDx(s.query_ids[0]), RetrievalOptions(1, 5)})
            .ok());
  }
  ServerStats idle = server.stats();
  EXPECT_EQ(idle.batch_size_histogram[0], 3u) << "idle => singleton batches";

  // Backlog phase: pin the worker, pile up a burst, release.
  WorkerGate gate;
  auto gated = server.Submit({gate.Gated(s.QueryDx(s.query_ids[0])), ro});
  while (gate.entered.load() == 0) std::this_thread::sleep_for(1ms);
  std::vector<Future<StatusOr<RetrievalResponse>>> burst;
  for (size_t i = 0; i < 12; ++i) {
    burst.push_back(server.Submit({s.QueryDx(s.query_ids[1]), ro}));
  }
  std::this_thread::sleep_for(20ms);  // Burst settles behind the worker.
  gate.Release();
  for (const auto& f : burst) EXPECT_TRUE(f.Get().ok());
  ASSERT_TRUE(gated.Get().ok());
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);

  ServerStats stats = server.stats();
  size_t multi = 0;
  for (size_t i = 1; i < stats.batch_size_histogram.size(); ++i) {
    multi += stats.batch_size_histogram[i];
  }
  EXPECT_GT(multi, 0u) << "backlog must produce at least one multi-batch";
  size_t weighted = 0;
  for (size_t i = 0; i < stats.batch_size_histogram.size(); ++i) {
    weighted += (i + 1) * stats.batch_size_histogram[i];
  }
  EXPECT_EQ(weighted, stats.completed);
}

// --- Shutdown -----------------------------------------------------------

TEST(AsyncServerTest, DrainCompletesEverythingThenRejectsNewWork) {
  ServingStack s;
  AsyncServerOptions options;
  options.max_batch = 4;
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions ro(2, 10);
  std::vector<Future<StatusOr<RetrievalResponse>>> futures;
  for (size_t query_id : s.query_ids) {
    futures.push_back(server.Submit({s.QueryDx(query_id), ro}));
  }
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  for (const auto& f : futures) {
    ASSERT_TRUE(f.ready()) << "Shutdown must resolve every future";
    EXPECT_TRUE(f.Get().ok());
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.queue_depth, 0u);

  auto late = server.Submit({s.QueryDx(s.query_ids[0]), ro});
  ASSERT_TRUE(late.ready());
  EXPECT_EQ(late.Get().status().code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncServerTest, CancelAnswersQueuedWorkWithoutExecutingIt) {
  ServingStack s;
  AsyncServerOptions options;
  options.max_batch = 1;
  options.num_workers = 1;
  options.queue_capacity = 32;
  AsyncRetrievalServer server(&s.mono, options);

  WorkerGate gate;
  RetrievalOptions ro(1, 5);
  auto in_flight = server.Submit({gate.Gated(s.QueryDx(s.query_ids[0])), ro});
  while (gate.entered.load() == 0) std::this_thread::sleep_for(1ms);
  std::vector<Future<StatusOr<RetrievalResponse>>> queued;
  for (size_t i = 0; i < 8; ++i) {
    queued.push_back(server.Submit({s.QueryDx(s.query_ids[1]), ro}));
  }

  std::thread shutdown(
      [&] { server.Shutdown(AsyncRetrievalServer::DrainMode::kCancel); });
  std::this_thread::sleep_for(20ms);
  gate.Release();  // Unpin the worker so Shutdown can join.
  shutdown.join();

  // The in-flight request finished normally; everything queued behind it
  // was answered with the shutdown status, deterministically.
  EXPECT_TRUE(in_flight.Get().ok());
  for (const auto& f : queued) {
    ASSERT_TRUE(f.ready());
    EXPECT_EQ(f.Get().status().code(), StatusCode::kFailedPrecondition);
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, queued.size());
  EXPECT_EQ(stats.completed, 1u);
  // The lane breakdown sees the cancellations too (all traffic kNormal).
  EXPECT_EQ(stats.lanes[1].cancelled, queued.size());
  EXPECT_EQ(stats.lanes[1].completed, 1u);
  EXPECT_TRUE(CheckServerStatsInvariant(stats));
}

TEST(AsyncServerTest, DestructorDrains) {
  ServingStack s;
  Future<StatusOr<RetrievalResponse>> future;
  {
    AsyncRetrievalServer server(&s.mono);
    future =
        server.Submit({s.QueryDx(s.query_ids[0]), RetrievalOptions(1, 5)});
  }
  ASSERT_TRUE(future.ready());
  EXPECT_TRUE(future.Get().ok());
}

// --- Error propagation and stats ---------------------------------------

TEST(AsyncServerTest, BackendErrorsPropagateAsCompleted) {
  // An empty backend fails FailedPrecondition inside RetrieveBatch; the
  // server delivers that status and counts the request as completed (the
  // backend answered — it is not an admission failure).
  ServingStack s;
  ShardedEngineOptions shard_options;
  shard_options.num_shards = 2;
  ShardedRetrievalEngine empty(&s.model, &s.scorer, shard_options);
  AsyncRetrievalServer server(&empty);
  auto got =
      server.Retrieve({s.QueryDx(s.query_ids[0]), RetrievalOptions(1, 5)});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(AsyncServerTest, StatsInvariantsHoldAfterMixedTraffic) {
  ServingStack s;
  AsyncServerOptions options;
  options.queue_capacity = 16;  // Roomy: only the invalid submit rejects.
  options.max_batch = 2;
  AsyncRetrievalServer server(&s.mono, options);
  RetrievalOptions ok(1, 5);
  RetrievalOptions dead = ok;
  dead.deadline = RetrievalClock::now() - 1ms;
  RetrievalOptions invalid(0, 5);

  std::vector<Future<StatusOr<RetrievalResponse>>> futures;
  for (size_t i = 0; i < 6; ++i) {
    futures.push_back(server.Submit(
        {s.QueryDx(s.query_ids[i % 4]), i % 3 == 2 ? dead : ok}));
  }
  futures.push_back(server.Submit({s.QueryDx(s.query_ids[0]), invalid}));
  for (const auto& f : futures) f.Wait();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, futures.size());
  EXPECT_TRUE(CheckServerStatsInvariant(stats));
  EXPECT_EQ(stats.rejected, 1u);   // The invalid submit.
  EXPECT_EQ(stats.expired, 2u);    // i = 2 and i = 5.
  EXPECT_EQ(stats.queue_depth, 0u);
  // The lane breakdown tiles the global counters (all traffic kNormal).
  EXPECT_EQ(stats.lanes[1].submitted, futures.size() - 1);
  EXPECT_EQ(stats.lanes[1].expired, 2u);
  EXPECT_EQ(stats.lanes[1].completed, stats.completed);
  EXPECT_EQ(stats.lanes[0].submitted, 0u);
  EXPECT_EQ(stats.lanes[2].submitted, 0u);
}

}  // namespace
}  // namespace qse
