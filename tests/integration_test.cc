// End-to-end tests covering the paper's pipeline on the Fig. 1 toy space:
// train all method variants on 2D points, run filter-and-refine retrieval,
// and check the qualitative claims (query-sensitive + selective sampling
// helps; embeddings beat random filtering; accuracy/cost protocol wiring).
#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/evaluation.h"
#include "src/retrieval/exact_knn.h"
#include "src/retrieval/filter_refine.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct Workbench {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
  GroundTruth gt;
};

Workbench MakeWorkbench(size_t n_db, size_t n_query, size_t kmax,
                        uint64_t seed) {
  auto oracle = test::MakePlaneOracle(n_db + n_query, seed);
  std::vector<size_t> db_ids = test::Iota(n_db);
  std::vector<size_t> query_ids = test::Iota(n_query, n_db);
  GroundTruth gt = ComputeGroundTruth(oracle, db_ids, query_ids, kmax);
  return {std::move(oracle), std::move(db_ids), std::move(query_ids),
          std::move(gt)};
}

QuerySensitiveEmbedding TrainVariant(const Workbench& w,
                                     TripleSampling sampling, bool qs,
                                     size_t rounds = 20) {
  BoostMapConfig config;
  config.sampling = sampling;
  config.num_triples = 800;
  config.k1 = 3;
  config.boost.rounds = rounds;
  config.boost.embeddings_per_round = 16;
  config.boost.query_sensitive = qs;
  // Use the first 40 db objects as both C and Xtr.
  std::vector<size_t> sample(w.db_ids.begin(), w.db_ids.begin() + 40);
  auto artifacts = TrainBoostMap(w.oracle, sample, sample, config);
  EXPECT_TRUE(artifacts.ok()) << artifacts.status();
  return std::move(artifacts->model);
}

/// Fraction of queries whose full k-NN set appears in the filter's top p.
double FilterRecall(const Workbench& w, const Embedder& embedder,
                    const FilterScorer& scorer, size_t k, size_t p) {
  EmbeddedDatabase db = EmbedDatabase(embedder, w.oracle, w.db_ids);
  LadderPoint point = EvaluateLadderPoint(embedder, scorer, db, w.oracle,
                                          w.db_ids, w.query_ids, w.gt, 0);
  size_t ok = 0;
  for (const auto& req : point.required_p) {
    if (req[k - 1] <= p) ++ok;
  }
  return static_cast<double>(ok) /
         static_cast<double>(point.required_p.size());
}

TEST(IntegrationTest, TrainedEmbeddingBeatsChanceOnTripleClassification) {
  Workbench w = MakeWorkbench(80, 10, 5, 1);
  QuerySensitiveEmbedding model =
      TrainVariant(w, TripleSampling::kRandom, true);
  // Classify fresh random triples of db objects.
  Rng rng(2);
  size_t correct = 0, total = 0;
  std::vector<Vector> embedded(w.db_ids.size());
  for (size_t i = 0; i < w.db_ids.size(); ++i) {
    size_t id = w.db_ids[i];
    embedded[i] = model.Embed(
        [&](size_t o) { return o == id ? 0.0 : w.oracle.Distance(id, o); });
  }
  for (int trial = 0; trial < 500; ++trial) {
    size_t q = rng.Index(80), a = rng.Index(80), b = rng.Index(80);
    if (q == a || q == b || a == b) continue;
    double da = w.oracle.Distance(q, a), db_ = w.oracle.Distance(q, b);
    if (da == db_) continue;
    double margin = model.TripleMargin(embedded[q], embedded[a], embedded[b]);
    bool predicted_a = margin > 0;
    bool truth_a = da < db_;
    if (predicted_a == truth_a) ++correct;
    ++total;
  }
  double accuracy = static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_GT(accuracy, 0.85);  // Far better than the 50% random baseline.
}

TEST(IntegrationTest, SeQsFilterRecallAtLeastAsGoodAsFastMapAtSmallP) {
  Workbench w = MakeWorkbench(100, 20, 3, 3);
  QuerySensitiveEmbedding se_qs =
      TrainVariant(w, TripleSampling::kSelective, true, 30);
  QseEmbedderAdapter qs_adapter(&se_qs);
  QuerySensitiveScorer qs_scorer(&se_qs);
  double qs_recall = FilterRecall(w, qs_adapter, qs_scorer, 3, 10);

  FastMapOptions fm_options;
  fm_options.dims = 2;
  FastMapModel fm = BuildFastMap(w.oracle, w.db_ids, fm_options);
  L2Scorer l2;
  double fm_recall = FilterRecall(w, fm, l2, 3, 10);

  // On easy 2D data both should be strong; Se-QS must not lose.
  EXPECT_GE(qs_recall + 0.05, fm_recall);
  EXPECT_GT(qs_recall, 0.8);
}

TEST(IntegrationTest, EndToEndRetrievalFindsTrueNeighborsCheaply) {
  Workbench w = MakeWorkbench(120, 15, 1, 4);
  QuerySensitiveEmbedding model =
      TrainVariant(w, TripleSampling::kSelective, true, 25);
  QseEmbedderAdapter adapter(&model);
  QuerySensitiveScorer scorer(&model);
  EmbeddedDatabase db = EmbedDatabase(adapter, w.oracle, w.db_ids);
  RetrievalEngine retriever(&adapter, &scorer, &db, w.db_ids);

  size_t hits = 0;
  size_t total_cost = 0;
  const size_t p = 20;
  for (size_t qi = 0; qi < w.query_ids.size(); ++qi) {
    size_t query_id = w.query_ids[qi];
    auto dx = [&](size_t id) { return w.oracle.Distance(query_id, id); };
    auto result = retriever.Retrieve({dx, RetrievalOptions(1, p)});
    ASSERT_TRUE(result.ok()) << result.status();
    total_cost += result->exact_distances;
    if (result->neighbors[0].index == w.gt.knn[qi][0]) ++hits;
  }
  EXPECT_GE(hits, 13u);  // >= ~87% of queries exact at p = 20 of 120.
  // Far fewer distances than brute force (15 queries x 120 objects).
  EXPECT_LT(total_cost, 15 * 120 / 2);
}

TEST(IntegrationTest, OptimalCostProtocolRunsAcrossPrefixLadder) {
  Workbench w = MakeWorkbench(90, 12, 5, 5);
  QuerySensitiveEmbedding model =
      TrainVariant(w, TripleSampling::kSelective, true, 24);
  QuerySensitiveScorer scorer(&model);
  std::vector<LadderPoint> ladder;
  for (size_t j : {4u, 8u, 16u, 24u}) {
    QuerySensitiveEmbedding prefix = model.Prefix(j);
    QseEmbedderAdapter adapter(&prefix);
    QuerySensitiveScorer prefix_scorer(&prefix);
    EmbeddedDatabase db = EmbedDatabase(adapter, w.oracle, w.db_ids);
    ladder.push_back(EvaluateLadderPoint(adapter, prefix_scorer, db,
                                         w.oracle, w.db_ids, w.query_ids,
                                         w.gt, j));
  }
  for (size_t k : {1u, 5u}) {
    size_t cost = OptimalCost(ladder, k, 0.9, w.db_ids.size());
    EXPECT_LE(cost, w.db_ids.size());
    EXPECT_GE(cost, 1u);
  }
}

TEST(IntegrationTest, ModelRoundTripPreservesRetrieval) {
  Workbench w = MakeWorkbench(60, 5, 1, 6);
  QuerySensitiveEmbedding model =
      TrainVariant(w, TripleSampling::kSelective, true, 12);
  std::string path = testing::TempDir() + "/qse_integration_model.bin";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = QuerySensitiveEmbedding::Load(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t qi = 0; qi < w.query_ids.size(); ++qi) {
    size_t query_id = w.query_ids[qi];
    auto dx = [&](size_t id) { return w.oracle.Distance(query_id, id); };
    Vector a = model.Embed(dx);
    Vector b = loaded->Embed(dx);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qse
