// Microbenchmarks of every distance measure in the repo (google-benchmark).
//
// Backs the paper's Sec. 3.1 premise: "with our PC we can measure close to
// a million L1 distances between high-dimensional vectors in R^100 in one
// second, whereas only 15 shape context distances can be evaluated per
// second" — i.e. vector distances are orders of magnitude cheaper than the
// exact DX, which is what makes filter-and-refine worthwhile.
#include <benchmark/benchmark.h>

#include "src/data/digit_generator.h"
#include "src/data/timeseries_generator.h"
#include "src/distance/dtw.h"
#include "src/distance/edit_distance.h"
#include "src/distance/kl_divergence.h"
#include "src/distance/lp.h"
#include "src/distance/point_set.h"
#include "src/distance/weighted_l1.h"
#include "src/matching/hungarian.h"
#include "src/matching/shape_context.h"
#include "src/matching/shape_context_distance.h"
#include "src/util/random.h"

namespace qse {
namespace {

Vector RandomVector(Rng* rng, size_t d) {
  Vector v(d);
  for (double& x : v) x = rng->Uniform(-1, 1);
  return v;
}

void BM_L1Distance(benchmark::State& state) {
  Rng rng(1);
  size_t d = static_cast<size_t>(state.range(0));
  Vector a = RandomVector(&rng, d), b = RandomVector(&rng, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L1Distance(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_L1Distance)->Arg(100)->Arg(600);

void BM_WeightedL1Distance(benchmark::State& state) {
  Rng rng(2);
  size_t d = static_cast<size_t>(state.range(0));
  Vector a = RandomVector(&rng, d), b = RandomVector(&rng, d);
  Vector w(d, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedL1Distance(a, b, w));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WeightedL1Distance)->Arg(100)->Arg(600);

void BM_L2Distance(benchmark::State& state) {
  Rng rng(3);
  Vector a = RandomVector(&rng, 100), b = RandomVector(&rng, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Distance(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_L2Distance);

void BM_KlDivergence(benchmark::State& state) {
  Rng rng(4);
  Vector a(64), b(64);
  for (size_t i = 0; i < 64; ++i) {
    a[i] = rng.Uniform(0, 1);
    b[i] = rng.Uniform(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlDivergence(a, b));
  }
}
BENCHMARK(BM_KlDivergence);

void BM_EditDistance(benchmark::State& state) {
  Rng rng(5);
  size_t len = static_cast<size_t>(state.range(0));
  std::string a, b;
  for (size_t i = 0; i < len; ++i) {
    a += static_cast<char>('a' + rng.Index(4));
    b += static_cast<char>('a' + rng.Index(4));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(64)->Arg(256);

void BM_ConstrainedDtw(benchmark::State& state) {
  TimeSeriesGeneratorParams params;
  params.base_length = static_cast<size_t>(state.range(0));
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, 6);
  Series a = gen.MakeVariant(0), b = gen.MakeVariant(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConstrainedDtw(a, b, 0.1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ConstrainedDtw)->Arg(96)->Arg(256)->Arg(500);

void BM_LbKeogh(benchmark::State& state) {
  TimeSeriesGeneratorParams params;
  params.base_length = 96;
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, 7);
  Series a = gen.MakeVariant(0), b = gen.MakeVariant(1);
  DtwEnvelope env = BuildEnvelope(a, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeogh(env, b));
  }
}
BENCHMARK(BM_LbKeogh);

void BM_Chamfer(benchmark::State& state) {
  DigitGenerator gen({}, 8);
  PointSet a = gen.Sample().shape, b = gen.Sample().shape;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChamferDistance(a, b));
  }
}
BENCHMARK(BM_Chamfer);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(9);
  size_t n = static_cast<size_t>(state.range(0));
  Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(24)->Arg(64)->Arg(100);

void BM_ShapeContextDescriptors(benchmark::State& state) {
  DigitGeneratorParams params;
  params.points_per_digit = static_cast<size_t>(state.range(0));
  DigitGenerator gen(params, 10);
  PointSet ps = gen.Sample().shape;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeShapeContexts(ps, {}));
  }
}
BENCHMARK(BM_ShapeContextDescriptors)->Arg(24)->Arg(100);

void BM_ShapeContextDistance(benchmark::State& state) {
  DigitGeneratorParams params;
  params.points_per_digit = static_cast<size_t>(state.range(0));
  DigitGenerator gen(params, 11);
  PointSet a = gen.Sample().shape, b = gen.Sample().shape;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapeContextDistance(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// n = 24 is the repo's experiment setting; n = 100 matches the paper's
// "100 shape context features per image" (expect ~tens of distances per
// second, versus ~10^6/s for BM_L1Distance/100 — the Sec. 3.1 gap).
BENCHMARK(BM_ShapeContextDistance)->Arg(24)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace qse

BENCHMARK_MAIN();
