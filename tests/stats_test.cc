#include "src/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/matrix.h"
#include "src/util/top_k.h"

namespace qse {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceIsUnbiased) {
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, StdDevIsSqrtVariance) {
  std::vector<double> xs = {1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(StdDev(xs) * StdDev(xs), Variance(xs));
}

TEST(StatsTest, QuantileNearestRankMatchesPaperSemantics) {
  // With p set to the B-quantile of per-query required p values, at least
  // B of the queries must succeed.
  std::vector<double> req = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(QuantileNearestRank(req, 0.9), 9.0);
  EXPECT_DOUBLE_EQ(QuantileNearestRank(req, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(QuantileNearestRank(req, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(QuantileNearestRank(req, 0.0), 1.0);
}

TEST(StatsTest, QuantileOnUnsortedInput) {
  EXPECT_DOUBLE_EQ(QuantileNearestRank({9, 1, 5}, 0.5), 5.0);
}

TEST(StatsTest, QuantileCountGuarantee) {
  // Property: at least ceil(q * n) values are <= the returned quantile.
  std::vector<double> xs = {0.3, 0.1, 0.9, 0.5, 0.2, 0.8, 0.4};
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double v = QuantileNearestRank(xs, q);
    size_t count = 0;
    for (double x : xs) {
      if (x <= v) ++count;
    }
    EXPECT_GE(count, static_cast<size_t>(
                         std::ceil(q * static_cast<double>(xs.size()))))
        << "q=" << q;
  }
}

TEST(StatsTest, MedianMinMax) {
  std::vector<double> xs = {3, 1, 2};
  EXPECT_DOUBLE_EQ(Median(xs), 2.0);
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 3.0);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(StatsTest, Summarize) {
  Summary s = Summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(TopKTest, SmallestKReturnsSortedSmallest) {
  std::vector<double> scores = {5.0, 1.0, 4.0, 2.0, 3.0};
  auto top = SmallestK(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[1].index, 3u);
  EXPECT_EQ(top[2].index, 4u);
}

TEST(TopKTest, SmallestKClampsK) {
  auto top = SmallestK({1.0, 2.0}, 10);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopKTest, DeterministicTieBreakByIndex) {
  std::vector<double> scores = {1.0, 1.0, 1.0};
  auto top = SmallestK(scores, 2);
  EXPECT_EQ(top[0].index, 0u);
  EXPECT_EQ(top[1].index, 1u);
}

TEST(TopKTest, ArgsortAscending) {
  auto order = ArgsortAscending({3.0, 1.0, 2.0});
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(TopKTest, RankOfMatchesArgsortPosition) {
  std::vector<double> scores = {0.5, 0.1, 0.9, 0.1, 0.3};
  auto order = ArgsortAscending(scores);
  for (size_t i = 0; i < scores.size(); ++i) {
    size_t rank = RankOf(scores, i);
    EXPECT_EQ(order[rank - 1], i);
  }
}

TEST(MatrixTest, StorageAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 7.0);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

}  // namespace
}  // namespace qse
