#include "src/util/top_k.h"

#include <cassert>
#include <limits>

namespace qse {

std::vector<ScoredIndex> SmallestK(const std::vector<double>& scores,
                                   size_t k) {
  k = std::min(k, scores.size());
  std::vector<ScoredIndex> all(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) all[i] = {i, scores[i]};
  if (k < all.size()) {
    std::nth_element(all.begin(), all.begin() + static_cast<long>(k),
                     all.end());
    all.resize(k);
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<size_t> ArgsortAscending(const std::vector<double>& scores) {
  std::vector<ScoredIndex> all(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) all[i] = {i, scores[i]};
  std::sort(all.begin(), all.end());
  std::vector<size_t> idx(all.size());
  for (size_t i = 0; i < all.size(); ++i) idx[i] = all[i].index;
  return idx;
}

double BoundedTopK::threshold() const {
  if (k_ == 0) return -std::numeric_limits<double>::infinity();
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.front().score;
}

bool BoundedTopK::Offer(ScoredIndex cand) {
  if (k_ == 0) return false;
  if (!full()) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end());
    return true;
  }
  if (!(cand < heap_.front())) return false;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = cand;
  std::push_heap(heap_.begin(), heap_.end());
  return true;
}

std::vector<ScoredIndex> BoundedTopK::TakeSortedAscending() {
  std::sort_heap(heap_.begin(), heap_.end());
  return std::move(heap_);
}

std::vector<ScoredIndex> MergeSortedTopK(
    const std::vector<std::vector<ScoredIndex>>& lists, size_t k) {
  // One cursor per non-empty list; a min-heap over the cursors' current
  // heads yields the global ascending order one entry at a time.
  struct Cursor {
    const std::vector<ScoredIndex>* list;
    size_t pos;
    const ScoredIndex& head() const { return (*list)[pos]; }
  };
  // std::*_heap builds a max-heap under its comparator, so "greater head"
  // compares as less to keep the smallest head on top.
  auto min_heap_order = [](const Cursor& a, const Cursor& b) {
    return b.head() < a.head();
  };
  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  size_t total = 0;
  for (const std::vector<ScoredIndex>& list : lists) {
    total += list.size();
    if (!list.empty()) heap.push_back({&list, 0});
  }
  std::make_heap(heap.begin(), heap.end(), min_heap_order);

  std::vector<ScoredIndex> merged;
  merged.reserve(std::min(k, total));
  while (merged.size() < k && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), min_heap_order);
    Cursor& top = heap.back();
    merged.push_back(top.head());
    if (++top.pos < top.list->size()) {
      std::push_heap(heap.begin(), heap.end(), min_heap_order);
    } else {
      heap.pop_back();
    }
  }
  return merged;
}

size_t RankOf(const std::vector<double>& scores, size_t target_index) {
  assert(target_index < scores.size());
  ScoredIndex target{target_index, scores[target_index]};
  size_t rank = 1;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i == target_index) continue;
    if (ScoredIndex{i, scores[i]} < target) ++rank;
  }
  return rank;
}

}  // namespace qse
