// Socket transport tests: framing round trips, the EOF taxonomy (clean
// close vs mid-frame), oversized frames refused before allocation, read
// timeouts, connection refusal, and listener shutdown from another
// thread.
#include "src/net/socket_transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

namespace qse {
namespace net {
namespace {

TransportOptions FastOptions() {
  TransportOptions options;
  options.connect_timeout = std::chrono::milliseconds(500);
  options.read_timeout = std::chrono::milliseconds(500);
  options.write_timeout = std::chrono::milliseconds(500);
  return options;
}

/// A listener plus one accepted connection, the unit every test needs.
struct Pair {
  ServerSocket listener;
  Socket server_side;
  Socket client_side;
};

Pair MakePair() {
  Pair pair;
  auto listener = ServerSocket::Listen(0, FastOptions());
  EXPECT_TRUE(listener.ok()) << listener.status().message();
  pair.listener = std::move(listener).value();
  auto client = Socket::Connect("127.0.0.1", pair.listener.port(),
                                FastOptions());
  EXPECT_TRUE(client.ok()) << client.status().message();
  pair.client_side = std::move(client).value();
  auto accepted = pair.listener.Accept();
  EXPECT_TRUE(accepted.ok()) << accepted.status().message();
  pair.server_side = std::move(accepted).value();
  return pair;
}

TEST(SocketTransportTest, FramesRoundTrip) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.client_side.SendFrame("hello").ok());
  ASSERT_TRUE(pair.client_side.SendFrame("").ok());  // empty frame is legal
  std::string big(1 << 20, 'x');
  ASSERT_TRUE(pair.client_side.SendFrame(big).ok());

  auto f1 = pair.server_side.RecvFrame();
  auto f2 = pair.server_side.RecvFrame();
  auto f3 = pair.server_side.RecvFrame();
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  EXPECT_EQ(f1.value(), "hello");
  EXPECT_EQ(f2.value(), "");
  EXPECT_EQ(f3.value(), big);

  // And back the other way on the same connection.
  ASSERT_TRUE(pair.server_side.SendFrame("reply").ok());
  auto back = pair.client_side.RecvFrame();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "reply");
}

TEST(SocketTransportTest, CleanCloseBetweenFramesIsUnavailable) {
  Pair pair = MakePair();
  pair.client_side.Close();
  auto frame = pair.server_side.RecvFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

/// Writes raw bytes to a loopback port, bypassing Socket's framing —
/// how a test impersonates a peer that violates the protocol.
void RawWriteAndClose(uint16_t port, const std::string& bytes) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  close(fd);
}

TEST(SocketTransportTest, EofMidFrameIsDataLoss) {
  // A peer that promises 100 bytes, delivers 3, and hangs up: framing
  // can no longer be trusted, so the error is kDataLoss, not a clean
  // close.
  auto listener = ServerSocket::Listen(0, FastOptions());
  ASSERT_TRUE(listener.ok());
  uint32_t claim = 100;
  std::string partial(reinterpret_cast<const char*>(&claim), sizeof(claim));
  partial += "abc";
  std::thread lying_client([port = listener.value().port(), partial] {
    RawWriteAndClose(port, partial);
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  auto frame = accepted.value().RecvFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  lying_client.join();
}

TEST(SocketTransportTest, EofInsideLengthPrefixIsDataLoss) {
  // Even a torn 4-byte header (2 bytes then FIN) is mid-frame.
  auto listener = ServerSocket::Listen(0, FastOptions());
  ASSERT_TRUE(listener.ok());
  std::thread lying_client([port = listener.value().port()] {
    RawWriteAndClose(port, std::string(2, '\x07'));
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  auto frame = accepted.value().RecvFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  lying_client.join();
}

TEST(SocketTransportTest, OversizedFrameClaimIsDataLossBeforeAllocation) {
  // The peer claims a 4 GiB frame.  The receiver must refuse from the 4
  // header bytes alone — if it allocated first, this test would OOM
  // instead of failing an expectation.
  auto listener = ServerSocket::Listen(0, FastOptions());
  ASSERT_TRUE(listener.ok());
  uint32_t huge = 0xFFFFFFFFu;
  std::thread lying_client([port = listener.value().port(), huge] {
    RawWriteAndClose(
        port,
        std::string(reinterpret_cast<const char*>(&huge), sizeof(huge)));
  });
  auto accepted = listener.value().Accept();
  ASSERT_TRUE(accepted.ok());
  auto frame = accepted.value().RecvFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  lying_client.join();
}

TEST(SocketTransportTest, SendingOverTheCapIsInvalidArgument) {
  TransportOptions tiny = FastOptions();
  tiny.max_frame_bytes = 1024;
  auto listener = ServerSocket::Listen(0, FastOptions());
  ASSERT_TRUE(listener.ok());
  auto client =
      Socket::Connect("127.0.0.1", listener.value().port(), tiny);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.value().SendFrame(std::string(4096, 'b')).code(),
            StatusCode::kInvalidArgument);
}

TEST(SocketTransportTest, ReadTimeoutIsDeadlineExceeded) {
  Pair pair = MakePair();
  ASSERT_TRUE(pair.server_side
                  .SetReadTimeout(std::chrono::milliseconds(50))
                  .ok());
  auto frame = pair.server_side.RecvFrame();  // nobody will write
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketTransportTest, ConnectionRefusedIsUnavailable) {
  // Bind-then-close: the port existed a moment ago and is now free, so
  // connecting to it is refused rather than swallowed by a firewall.
  uint16_t dead_port;
  {
    auto listener = ServerSocket::Listen(0, FastOptions());
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port();
  }
  auto sock = Socket::Connect("127.0.0.1", dead_port, FastOptions());
  ASSERT_FALSE(sock.ok());
  EXPECT_EQ(sock.status().code(), StatusCode::kUnavailable);
}

TEST(SocketTransportTest, BadHostLiteralIsInvalidArgument) {
  auto sock = Socket::Connect("not-a-host", 80, FastOptions());
  ASSERT_FALSE(sock.ok());
  EXPECT_EQ(sock.status().code(), StatusCode::kInvalidArgument);
}

TEST(SocketTransportTest, ShutdownUnblocksAccept) {
  auto listener = ServerSocket::Listen(0, FastOptions());
  ASSERT_TRUE(listener.ok());
  ServerSocket server = std::move(listener).value();
  std::thread acceptor([&server] {
    auto accepted = server.Accept();
    EXPECT_FALSE(accepted.ok());
    EXPECT_EQ(accepted.status().code(), StatusCode::kUnavailable);
  });
  // Give Accept a moment to block, then shut down from this thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();
  acceptor.join();
}

TEST(SocketTransportTest, ShutdownBothWakesBlockedReader) {
  Pair pair = MakePair();
  std::thread reader([&pair] {
    auto frame = pair.server_side.RecvFrame();
    EXPECT_FALSE(frame.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pair.server_side.ShutdownBoth();
  reader.join();
}

TEST(SocketTransportTest, ErrnoMappingTaxonomy) {
  EXPECT_EQ(StatusFromErrno("x", ECONNREFUSED).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", ECONNRESET).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", EPIPE).code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", ENETUNREACH).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", EHOSTUNREACH).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", ENOTCONN).code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", ESHUTDOWN).code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", EAGAIN).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusFromErrno("x", ETIMEDOUT).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusFromErrno("x", EBADF).code(), StatusCode::kIOError);
  // Context and strerror text both land in the message.
  EXPECT_NE(StatusFromErrno("during handshake", ECONNRESET)
                .message()
                .find("during handshake"),
            std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace qse
