#ifndef QSE_UTIL_CRC32_H_
#define QSE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace qse {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte buffer — the
/// per-record integrity check of the durability subsystem's WAL and
/// snapshot files.  A torn write, bit flip or lying length prefix must be
/// detected BEFORE any decoded field is trusted; a 32-bit CRC catches all
/// single-burst errors up to 32 bits and any single-bit flip, which covers
/// the failure modes a local filesystem actually produces (partial
/// sector, cosmic-ray flip), at a cost the mutation path never notices
/// next to the write() syscall beside it.
///
/// `seed` chains incremental computation: Crc32(b, n2, Crc32(a, n1))
/// equals the CRC of the concatenation.  The default seed is the
/// standard initial value.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& buf, uint32_t seed = 0) {
  return Crc32(buf.data(), buf.size(), seed);
}

}  // namespace qse

#endif  // QSE_UTIL_CRC32_H_
