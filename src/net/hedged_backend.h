#ifndef QSE_NET_HEDGED_BACKEND_H_
#define QSE_NET_HEDGED_BACKEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metric_registry.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace net {

struct HedgedBackendOptions {
  /// Master switch; false degrades to plain failover (a lagging attempt
  /// is only abandoned when it errors, never raced) — the A/B arm the
  /// bench harness compares hedging against.
  bool enable_hedging = true;
  /// Latency quantile of the attempted replica's own history that arms
  /// the hedge timer: an attempt still in flight past its replica's
  /// q-quantile is presumed slow and a backup is launched.
  double hedge_quantile = 0.95;
  /// Hedge delay clamp and the fallback used until a replica has
  /// min_samples_for_quantile observations to estimate from.
  std::chrono::milliseconds min_hedge_delay{1};
  std::chrono::milliseconds max_hedge_delay{200};
  std::chrono::milliseconds initial_hedge_delay{20};
  uint64_t min_samples_for_quantile = 32;
};

/// N replicas of the SAME data behind one RetrievalBackend: reads go to
/// one replica and are hedged to the next when the first is slow
/// (first response wins), writes are broadcast to all.
///
/// Hedging policy: every read records its latency into the serving
/// replica's histogram; an attempt outstanding longer than that
/// replica's own observed `hedge_quantile` latency (clamped to
/// [min, max]_hedge_delay) triggers one backup attempt on the next
/// replica round-robin, and so on down the list.  An attempt that FAILS
/// triggers the next attempt immediately — failover spends no hedge
/// delay — which is what makes a killed replica invisible to callers
/// (modulo one connect timeout) rather than a source of errors.  The
/// call fails only when every replica has failed.
///
/// Replica sets hold the same logical database, so the first successful
/// response — whichever replica served it — is THE response;
/// scatter-level determinism is unaffected by which replica won.
///
/// Thread-safety: all reads are const and concurrent; broadcasts follow
/// the replicas' own mutation contracts.  Hedge attempts run on
/// detached threads that share state via shared_ptr, so a slow loser
/// finishing after the winner (or after this object is destroyed —
/// destruction waits for stragglers) touches only its own call state.
class HedgedReplicaBackend : public RetrievalBackend {
 public:
  explicit HedgedReplicaBackend(
      std::vector<std::shared_ptr<RetrievalBackend>> replicas,
      HedgedBackendOptions options = {});
  ~HedgedReplicaBackend() override;

  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override;

  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override;

  StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query,
      const RetrievalOptions& options) const override;

  /// Broadcast to every replica (replica sets must stay identical).
  /// The first error is returned, but all replicas are still attempted:
  /// a dead replica must not leave the live ones diverging.
  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override;
  Status InsertEmbedded(size_t db_id, const Vector& embedded_row) override;
  Status Remove(size_t db_id) override;

  /// Max over replicas: unreachable replicas report 0 and must not make
  /// a healthy set look empty.
  size_t size() const override;

  size_t db_id_of(size_t neighbor_index) const override {
    return replicas_[0]->db_id_of(neighbor_index);
  }

  size_t num_replicas() const { return replicas_.size(); }

 private:
  template <typename T>
  struct CallState;

  /// The hedged read driver shared by Retrieve and ScanCandidates:
  /// `attempt(replica_index)` runs one try against one replica.
  template <typename T>
  StatusOr<T> HedgedCall(
      const std::function<StatusOr<T>(size_t)>& attempt) const;

  /// Hedge delay for an attempt on replica `r`, from that replica's own
  /// latency history.
  std::chrono::nanoseconds HedgeDelayFor(size_t r) const;

  std::vector<std::shared_ptr<RetrievalBackend>> replicas_;
  HedgedBackendOptions options_;
  mutable std::atomic<size_t> next_primary_{0};

  /// Stragglers outstanding on detached threads; the destructor waits
  /// for this to drain so attempts never outlive the backend.
  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_cv_;
  mutable size_t inflight_ = 0;

  /// Per-replica counters and latency, labels-in-name ({replica="i"}).
  struct ReplicaMetrics {
    obs::Counter* attempts;
    obs::Counter* errors;
    obs::Counter* hedges;  // backup attempts launched ON this replica
    obs::Counter* wins;    // responses served from this replica
    obs::Histogram* latency_ns;
  };
  std::vector<ReplicaMetrics> replica_metrics_;
  obs::Counter* hedged_fired_total_;
  obs::Counter* hedged_wins_total_;
};

}  // namespace net
}  // namespace qse

#endif  // QSE_NET_HEDGED_BACKEND_H_
