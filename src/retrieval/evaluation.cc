#include "src/retrieval/evaluation.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/stats.h"
#include "src/util/top_k.h"

namespace qse {

GroundTruth ComputeGroundTruth(const DistanceOracle& oracle,
                               const std::vector<size_t>& db_ids,
                               const std::vector<size_t>& query_ids,
                               size_t kmax) {
  QSE_CHECK(kmax >= 1 && kmax <= db_ids.size());
  GroundTruth gt;
  gt.kmax = kmax;
  gt.knn.resize(query_ids.size());
  // One independent scan per query; grain 2 because a query costs |db|
  // exact distances.  The oracle must be safe for concurrent const use.
  ParallelForGrain(0, query_ids.size(), 2, [&](size_t qi) {
    std::vector<double> scores(db_ids.size());
    for (size_t i = 0; i < db_ids.size(); ++i) {
      scores[i] = oracle.Distance(query_ids[qi], db_ids[i]);
    }
    std::vector<ScoredIndex> top = SmallestK(scores, kmax);
    gt.knn[qi].resize(top.size());
    for (size_t j = 0; j < top.size(); ++j) {
      gt.knn[qi][j] = static_cast<uint32_t>(top[j].index);
    }
  });
  return gt;
}

LadderPoint EvaluateLadderPoint(const Embedder& embedder,
                                const FilterScorer& scorer,
                                const EmbeddedDatabase& db,
                                const DistanceOracle& oracle,
                                const std::vector<size_t>& db_ids,
                                const std::vector<size_t>& query_ids,
                                const GroundTruth& gt, size_t param) {
  QSE_CHECK(gt.knn.size() == query_ids.size());
  QSE_CHECK(db.size() == db_ids.size());

  LadderPoint point;
  point.param = param;
  point.dims = embedder.dims();
  point.query_cost = embedder.EmbeddingCost();
  point.required_p.resize(query_ids.size());

  // Queries are independent: embed, full filter scan, rank statistics.
  // Grain 2 because each item costs an embedding (exact distances) plus
  // an O(n d) scan.  Oracle, embedder and scorer must be safe for
  // concurrent const use.
  ParallelForGrain(0, query_ids.size(), 2, [&](size_t qi) {
    size_t query_id = query_ids[qi];
    Vector fq = embedder.Embed(
        [&](size_t db_id) { return oracle.Distance(query_id, db_id); },
        nullptr);
    std::vector<double> scores;
    scorer.Score(fq, db, &scores);

    // rank_of[position] = 1-based rank in the filter ordering
    // (deterministic tie-break by position, matching SmallestK).
    std::vector<size_t> rank_of(db_ids.size());
    std::vector<size_t> order = ArgsortAscending(scores);
    for (size_t r = 0; r < order.size(); ++r) rank_of[order[r]] = r + 1;

    const std::vector<uint32_t>& truth = gt.knn[qi];
    std::vector<uint32_t>& req = point.required_p[qi];
    req.resize(truth.size());
    uint32_t worst = 0;
    for (size_t k = 0; k < truth.size(); ++k) {
      worst = std::max(worst, static_cast<uint32_t>(rank_of[truth[k]]));
      req[k] = worst;
    }
  });
  return point;
}

OptimalSetting OptimalCostSetting(const std::vector<LadderPoint>& ladder,
                                  size_t k, double accuracy_fraction,
                                  size_t db_size) {
  QSE_CHECK(k >= 1);
  QSE_CHECK(accuracy_fraction > 0.0 && accuracy_fraction <= 1.0);
  OptimalSetting best;
  best.total_cost = db_size;  // Brute force fallback.
  best.brute_force = true;
  for (const LadderPoint& point : ladder) {
    if (point.required_p.empty()) continue;
    QSE_CHECK(k <= point.required_p[0].size());
    std::vector<double> req(point.required_p.size());
    for (size_t qi = 0; qi < point.required_p.size(); ++qi) {
      req[qi] = static_cast<double>(point.required_p[qi][k - 1]);
    }
    size_t p = static_cast<size_t>(
        QuantileNearestRank(std::move(req), accuracy_fraction));
    size_t total = point.query_cost + p;
    if (total < best.total_cost) {
      best.param = point.param;
      best.dims = point.dims;
      best.p = p;
      best.total_cost = total;
      best.brute_force = false;
    }
  }
  return best;
}

size_t OptimalCost(const std::vector<LadderPoint>& ladder, size_t k,
                   double accuracy_fraction, size_t db_size) {
  return OptimalCostSetting(ladder, k, accuracy_fraction, db_size).total_cost;
}

}  // namespace qse
