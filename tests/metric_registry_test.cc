// Tests for the lock-free metric registry: counter/gauge/histogram
// correctness single-threaded, exact totals under concurrent writers
// (the striped cells must lose nothing), quantile estimation error
// bounds, and the Prometheus/JSON exposition formats.

#include "src/obs/metric_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/exposition.h"

namespace qse {
namespace obs {
namespace {

TEST(CounterTest, AddsAccumulateAndValueSeesThem) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  // 8 writers x 100k increments: the striped cells must sum to exactly
  // 800k whatever stripes the threads landed on.  Run under TSan this
  // also proves the hot path is race-free.
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 100000;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (size_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAddCompose) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  g.Add(5);
  EXPECT_EQ(g.Value(), 12);
  g.Set(0);
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketAssignmentIsInclusiveUpperBound) {
  // boundaries {10, 20}: bucket 0 holds <= 10, bucket 1 holds (10, 20],
  // bucket 2 is the +inf overflow.
  Histogram h({10.0, 20.0});
  h.Record(10.0);  // boundary value lands in its own bucket
  h.Record(10.5);
  h.Record(20.0);
  h.Record(1e9);
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 3u);
  EXPECT_EQ(snap.bucket_counts[0], 1u);
  EXPECT_EQ(snap.bucket_counts[1], 2u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 10.0 + 10.5 + 20.0 + 1e9);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucketWidth) {
  // Uniform 1..1000 into buckets of width 100: any quantile estimate
  // must land inside the bucket that holds the true quantile, so the
  // error is bounded by one bucket width.
  std::vector<double> boundaries;
  for (double b = 100; b <= 1000; b += 100) boundaries.push_back(b);
  Histogram h(boundaries);
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  for (double q : {0.10, 0.50, 0.95, 0.99}) {
    double truth = q * 1000.0;
    EXPECT_NEAR(snap.Quantile(q), truth, 100.0) << "q=" << q;
  }
  // Degenerate edges stay in range.
  EXPECT_GE(snap.Quantile(0.0), 0.0);
  EXPECT_LE(snap.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0.0);
}

TEST(HistogramTest, OverflowBucketReportsLastBoundary) {
  // Everything above the top boundary: no upper edge to interpolate
  // toward, so the estimate is pinned to the last finite boundary.
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.Record(100.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 2.0);
}

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  // 8 threads x 50k records with a snapshot reader racing them: the
  // final merge must account for every record in both count and sum,
  // and mid-flight snapshots must be internally plausible (TSan-clean).
  Histogram h(ExponentialBoundaries(1.0, 2.0, 12));
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 50000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      // Mid-flight snapshots race the writers by design; assert only
      // monotone sanity (never more than the final total), the real
      // point being that TSan sees no data race on this read path.
      HistogramSnapshot snap = h.Snapshot();
      uint64_t bucket_total = 0;
      for (uint64_t c : snap.bucket_counts) bucket_total += c;
      EXPECT_LE(bucket_total, kThreads * kPerThread);
      EXPECT_LE(snap.count, kThreads * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t * kPerThread + i) % 4096));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  double want_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      want_sum += static_cast<double>((t * kPerThread + i) % 4096);
    }
  }
  EXPECT_DOUBLE_EQ(snap.sum, want_sum);
}

TEST(BoundariesTest, ExponentialBoundariesShape) {
  std::vector<double> b = ExponentialBoundaries(1000.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1000.0);
  EXPECT_DOUBLE_EQ(b[3], 8000.0);
  // The shared latency default is strictly ascending (Histogram's
  // constructor contract).
  std::vector<double> lat = DefaultLatencyBoundariesNs();
  EXPECT_TRUE(std::is_sorted(lat.begin(), lat.end()));
  EXPECT_GT(lat.size(), 10u);
}

TEST(MetricRegistryTest, GetIsIdempotentAndPointersAreStable) {
  MetricRegistry registry;
  Counter* c1 = registry.GetCounter("requests_total");
  Counter* c2 = registry.GetCounter("requests_total");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("depth");
  EXPECT_EQ(g1, registry.GetGauge("depth"));
  Histogram* h1 = registry.GetHistogram("lat", {1.0, 2.0});
  // First boundaries win; a second registration keeps them.
  Histogram* h2 = registry.GetHistogram("lat", {5.0, 6.0, 7.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->boundaries().size(), 2u);
}

TEST(MetricRegistryTest, ForEachVisitsInLexicographicOrder) {
  MetricRegistry registry;
  registry.GetCounter("zz_total");
  registry.GetGauge("aa_depth");
  registry.GetHistogram("mm_lat", {1.0});
  std::vector<std::string> names;
  registry.ForEach([&](const std::string& name, const Counter* c,
                       const Gauge* g, const FloatGauge* fg,
                       const Histogram* h) {
    names.push_back(name);
    EXPECT_EQ(
        (c != nullptr) + (g != nullptr) + (fg != nullptr) + (h != nullptr), 1);
  });
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "aa_depth");
  EXPECT_EQ(names[1], "mm_lat");
  EXPECT_EQ(names[2], "zz_total");
}

TEST(MetricRegistryTest, ConcurrentGetOrCreateYieldsOneMetric) {
  MetricRegistry registry;
  constexpr size_t kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("contended_total");
      c->Increment();
      seen[t] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), kThreads);
}

TEST(ExpositionTest, PrometheusTextFormatsAllThreeKinds) {
  MetricRegistry registry;
  registry.GetCounter("qse_requests_total")->Add(7);
  registry.GetGauge("qse_queue_depth")->Set(3);
  Histogram* h = registry.GetHistogram("qse_latency_ns", {10.0, 20.0});
  h->Record(5.0);
  h->Record(15.0);
  h->Record(100.0);
  std::string text = PrometheusText(registry);

  EXPECT_NE(text.find("# TYPE qse_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("qse_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qse_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("qse_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qse_latency_ns histogram"),
            std::string::npos);
  // Cumulative buckets: le="20" counts everything <= 20, +Inf == count.
  EXPECT_NE(text.find("qse_latency_ns_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("qse_latency_ns_bucket{le=\"20\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("qse_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("qse_latency_ns_count 3"), std::string::npos);
  EXPECT_NE(text.find("qse_latency_ns_sum 120"), std::string::npos);
}

TEST(ExpositionTest, LabeledSeriesShareOneTypeLine) {
  MetricRegistry registry;
  registry.GetCounter("qse_lane_total{lane=\"high\"}")->Add(1);
  registry.GetCounter("qse_lane_total{lane=\"low\"}")->Add(2);
  std::string text = PrometheusText(registry);
  // One # TYPE line for the base name, both series present.
  size_t first = text.find("# TYPE qse_lane_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE qse_lane_total counter", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("qse_lane_total{lane=\"high\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("qse_lane_total{lane=\"low\"} 2"),
            std::string::npos);
}

TEST(ExpositionTest, MetricsJsonCarriesQuantiles) {
  MetricRegistry registry;
  registry.GetCounter("hits_total")->Add(5);
  registry.GetGauge("depth")->Set(-2);
  Histogram* h = registry.GetHistogram("lat", {10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h->Record(15.0);
  std::string json = MetricsJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"hits_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace qse
