#ifndef QSE_UTIL_CSV_H_
#define QSE_UTIL_CSV_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace qse {

/// Accumulates rows of a rectangular table and renders them as CSV and as
/// an aligned text table (used by bench binaries to print paper-style rows
/// and persist machine-readable results).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g and integers verbatim.
  static std::string Fmt(double v);
  static std::string Fmt(size_t v);
  static std::string Fmt(long long v);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// CSV serialization (header + rows).  Fields containing commas or quotes
  /// are quoted per RFC 4180.
  std::string ToCsv() const;

  /// Pretty-printed, column-aligned text rendering for stdout.
  std::string ToPretty() const;

  /// Writes ToCsv() to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qse

#endif  // QSE_UTIL_CSV_H_
