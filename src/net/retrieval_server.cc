#include "src/net/retrieval_server.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace qse {
namespace net {
namespace {

uint64_t NsSince(MonotonicClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count());
}

/// Copies a backend status into a response envelope.
void SetStatus(WireResponse* response, const Status& status) {
  response->code = status.code();
  response->message = std::string(status.message());
}

/// Serializes a trace's spans into the response, times re-based to the
/// trace's own epoch (which the handler pins at request receipt).
void AttachSpans(const obs::RequestTrace& trace, WireResponse* response) {
  for (const obs::TraceSpan& span : trace.spans()) {
    if (response->spans.size() >= kMaxWireSpans) break;
    WireSpan wire;
    wire.name = span.name;
    wire.start_ns = span.start_ns;
    wire.dur_ns = span.dur_ns;
    wire.tid = span.tid;
    response->spans.push_back(std::move(wire));
  }
}

}  // namespace

RetrievalServer::RetrievalServer(RetrievalBackend* backend,
                                 RetrievalServerOptions options)
    : backend_(backend),
      options_(std::move(options)),
      requests_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_net_server_requests_total")),
      errors_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_net_server_errors_total")),
      expired_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_net_server_expired_total")),
      handle_ns_(obs::MetricRegistry::Global().GetHistogram(
          "qse_net_server_handle_latency_ns",
          obs::DefaultLatencyBoundariesNs())) {}

RetrievalServer::~RetrievalServer() { Stop(); }

Status RetrievalServer::Start(uint16_t port) {
  auto listener = ServerSocket::Listen(port, options_.transport);
  QSE_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RetrievalServer::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller (destructor after explicit Stop): threads are
    // already joined or being joined by the first.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  // Wake handler threads blocked in RecvFrame, then join them.  New
  // entries cannot appear: the acceptor is gone.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : live_conns_) conn->ShutdownBoth();
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listener_.Close();
}

void RetrievalServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Shutdown (kUnavailable) or a listener-level failure either way
      // the acceptor is done.
      return;
    }
    auto conn = std::make_shared<Socket>(std::move(accepted).value());
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    live_conns_.insert(conn);
    conn_threads_.emplace_back([this, conn] { ServeConnection(conn); });
  }
}

void RetrievalServer::ServeConnection(std::shared_ptr<Socket> conn) {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto frame = conn->RecvFrame();
    if (!frame.ok()) break;  // closed peer, timeout, or broken framing

    WireRequest request;
    Status decoded = DecodeRequest(frame.value(), &request);
    WireResponse response;
    if (!decoded.ok()) {
      errors_total_->Increment();
      SetStatus(&response, decoded);
      (void)conn->SendFrame(EncodeResponse(response));
      if (decoded.code() == StatusCode::kDataLoss) break;
      continue;
    }

    response = Handle(request);
    if (!conn->SendFrame(EncodeResponse(response)).ok()) break;
  }
  conn->ShutdownBoth();
  std::lock_guard<std::mutex> lock(conn_mu_);
  live_conns_.erase(conn);
}

WireResponse RetrievalServer::Handle(const WireRequest& request) {
  requests_total_->Increment();
  const MonotonicClock::time_point arrival = MonotonicClock::now();
  WireResponse response;

  // Re-anchor the deadline: the wire carries the budget that remained at
  // send time, so transit cost is already subtracted from it.
  RetrievalOptions options = request.options;
  if (request.deadline_budget_ns > 0) {
    options.deadline =
        arrival + std::chrono::nanoseconds(request.deadline_budget_ns);
    if (options.deadline <= MonotonicClock::now()) {
      expired_total_->Increment();
      errors_total_->Increment();
      SetStatus(&response, Status::DeadlineExceeded(
                               "deadline budget exhausted before handling"));
      return response;
    }
  }

  std::shared_ptr<obs::RequestTrace> trace;
  if (request.want_trace) trace = std::make_shared<obs::RequestTrace>();

  Status status = Status::OK();
  switch (request.op) {
    case WireOp::kScan: {
      if (options_.debug_delay_every_n > 0 &&
          options_.debug_delay.count() > 0) {
        size_t n = scan_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (n % options_.debug_delay_every_n == 0) {
          std::this_thread::sleep_for(options_.debug_delay);
        }
      }
      uint64_t span_start = obs::TraceNowNs(trace.get());
      auto scan = backend_->ScanCandidates(request.query, options);
      if (scan.ok()) {
        ScanCandidatesResult result = std::move(scan).value();
        response.neighbors = std::move(result.candidates);
        response.rows = result.rows;
        response.rows_pruned = result.rows_pruned;
        obs::TraceMark(trace.get(), "server_scan", span_start,
                       {obs::TraceArg{
                           "candidates",
                           static_cast<int64_t>(response.neighbors.size()),
                           nullptr}});
      } else {
        status = scan.status();
      }
      break;
    }
    case WireOp::kRetrieve: {
      if (!options_.raw_query_resolver) {
        status = Status::FailedPrecondition(
            "server has no raw-query resolver; use kScan");
        break;
      }
      RetrievalRequest rpc;
      rpc.dx = options_.raw_query_resolver(request.query);
      rpc.options = options;
      rpc.trace = trace;
      auto retrieved = backend_->Retrieve(rpc);
      if (retrieved.ok()) {
        RetrievalResponse result = std::move(retrieved).value();
        response.neighbors.reserve(result.neighbors.size());
        for (const ScoredIndex& nb : result.neighbors) {
          // Backend-local neighbor indices mean nothing in another
          // process; ship database ids.
          response.neighbors.push_back(
              {backend_->db_id_of(nb.index), nb.score});
        }
        response.exact_distances = result.exact_distances;
        response.embedding_distances = result.embedding_distances;
        response.shard_stats = std::move(result.shard_stats);
      } else {
        status = retrieved.status();
      }
      break;
    }
    case WireOp::kInsert:
      status = backend_->InsertEmbedded(static_cast<size_t>(request.db_id),
                                        request.query);
      break;
    case WireOp::kRemove:
      status = backend_->Remove(static_cast<size_t>(request.db_id));
      break;
    case WireOp::kInfo:
      break;  // size is piggybacked below on every success
  }

  if (!status.ok()) {
    errors_total_->Increment();
    SetStatus(&response, status);
    return response;
  }
  response.db_size = backend_->size();
  if (trace != nullptr) AttachSpans(*trace, &response);
  handle_ns_->Record(NsSince(arrival));
  return response;
}

}  // namespace net
}  // namespace qse
