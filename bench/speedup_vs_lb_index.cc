// Reproduces the Sec. 9 speed-up comparison on the time-series dataset:
// the paper reports a 51.2x speed-up for Se-QS filter-and-refine
// retrieval (150-dim embedding, p = 443) with the true nearest neighbor
// retrieved for all 50 test queries, versus roughly 5x for the exact
// lower-bounding index of [32] on the same queries.
//
// Here the [32] comparator is LbDtwIndex (LB_Keogh lower-bounding exact
// search, DESIGN.md substitution #3).  Both methods run on the same
// fixed-length workload and the same 50 queries; costs are counted in
// exact cDTW evaluations per query, exactly as the paper counts them.
#include <cstdio>

#include "bench/harness.h"
#include "src/retrieval/lb_index.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);

  bench::WorkloadScale wscale;
  wscale.db_size = flags.GetSize("db", 2000);
  wscale.num_queries = flags.GetSize("queries", 50);  // Paper: 50 queries.
  wscale.seed = flags.GetSize("seed", 32);

  bench::TrainingScale tscale;
  tscale.num_cand = flags.GetSize("cand", 400);
  tscale.num_train = flags.GetSize("train", 400);
  tscale.num_triples = flags.GetSize("triples", 30000);
  tscale.rounds = flags.GetSize("rounds", 128);
  tscale.embeddings_per_round = flags.GetSize("epr", 48);
  tscale.k1 = 9;
  tscale.seed = flags.GetSize("train_seed", 11);

  // Fixed-length variant so LB_Keogh applies.
  bench::Workload workload =
      bench::MakeTimeSeriesWorkload(wscale, /*fixed_length=*/true);
  const size_t n = workload.db_ids.size();

  GroundTruth gt = bench::ComputeWorkloadGroundTruth(workload, 1);
  workload.SaveCache();

  // --- Se-QS filter-and-refine: smallest per-query cost with the true
  // nearest neighbor retrieved for ALL queries (100% accuracy, k = 1).
  bench::MethodLadder se_qs = bench::RunBoostMapVariant(
      workload, gt, "Se-QS", TripleSampling::kSelective, true, tscale);
  workload.SaveCache();
  OptimalSetting setting = OptimalCostSetting(se_qs.ladder, 1, 1.0, n);
  double qse_speedup = static_cast<double>(n) /
                       static_cast<double>(setting.total_cost);

  // --- LB_Keogh exact index on the same database and queries.
  std::vector<Series> all = bench::MakeFixedLengthSeries(
      wscale, wscale.db_size + wscale.num_queries, /*salt=*/0);
  std::vector<Series> db(all.begin(),
                         all.begin() + static_cast<long>(wscale.db_size));
  LbDtwIndex index(db, 0.1);
  std::vector<Series> queries(all.begin() + static_cast<long>(wscale.db_size),
                              all.end());
  std::vector<LbDtwIndex::Result> results = index.SearchBatch(queries, 1);
  std::vector<double> evals;
  size_t correct = 0;
  for (size_t qi = 0; qi < results.size(); ++qi) {
    const LbDtwIndex::Result& r = results[qi];
    evals.push_back(static_cast<double>(r.exact_evaluations));
    if (!r.neighbors.empty() && r.neighbors[0].index == gt.knn[qi][0]) {
      ++correct;
    }
  }
  double lb_speedup = static_cast<double>(n) / Mean(evals);

  Table table({"method", "avg_exact_distances_per_query", "speedup",
               "exact_NN_for_all_queries", "paper_speedup"});
  table.AddRow({"Se-QS filter-and-refine",
                Table::Fmt(setting.total_cost), Table::Fmt(qse_speedup),
                "yes (by construction)", "51.2"});
  table.AddRow({"LB index (exact, [32]-style)", Table::Fmt(Mean(evals)),
                Table::Fmt(lb_speedup),
                correct == wscale.num_queries ? "yes" : "NO (bug!)",
                "~5"});
  std::printf(
      "Speed-up on the time-series dataset, %zu db sequences, %zu "
      "queries\n(Se-QS at its optimal setting: %zu-round prefix, %zu dims, "
      "p = %zu)\n%s",
      n, wscale.num_queries, setting.param, setting.dims, setting.p,
      table.ToPretty().c_str());
  std::printf(
      "\nShape check (paper): Se-QS speed-up exceeds the exact LB index "
      "speed-up by a wide margin: %s\n",
      qse_speedup > lb_speedup ? "YES" : "NO");

  Status s = table.WriteCsv(bench::ResultsPath("speedup_vs_lb_index"));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return 0;
}
