#ifndef QSE_NET_REMOTE_BACKEND_H_
#define QSE_NET_REMOTE_BACKEND_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/net/socket_transport.h"
#include "src/net/wire_codec.h"
#include "src/obs/metric_registry.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace net {

struct RemoteBackendOptions {
  TransportOptions transport;
  /// Idempotent read RPCs (kScan / kRetrieve / kInfo) are retried once
  /// on kUnavailable / kDataLoss over a fresh connection — a dropped
  /// connection between requests is routine, not an error.  Mutations
  /// are never retried (a duplicate Insert is not idempotent).
  bool retry_reads = true;
  /// Dial attempts per RPC when no pooled connection exists: a refused
  /// or timed-out CONNECT is retried with doubling backoff up to this
  /// many total attempts.  Unlike post-send read retries, dial retries
  /// are safe for mutations too — nothing has been sent yet — which is
  /// what lets a client ride out a shard server restart (kill, recover
  /// from WAL, re-listen) without itself being restarted.  1 = dial
  /// once, fail fast.
  size_t reconnect_attempts = 4;
  /// Backoff before the second dial attempt; doubles per attempt.
  std::chrono::milliseconds reconnect_backoff{10};
};

/// A RetrievalBackend whose data lives in another process, behind a
/// RetrievalServer.  Drop-in for local engines: ShardedRetrievalEngine's
/// composed constructor or HedgedReplicaBackend stack on it with zero
/// scatter/gather changes.
///
/// Division of labor (the paper's pipeline, cut at the only seam that
/// survives a process boundary): the EMBEDDING step runs client-side —
/// `dx` is an opaque closure — and only the embedded vector crosses the
/// wire (kScan).  The server runs the filter scan; the client refines
/// the returned candidates with its own dx.  For a single remote backend
/// this reproduces RetrievalEngine bit for bit; under the sharded
/// engine, the composed ScatterScan merges remote candidate lists
/// exactly as local ones.
///
/// Deadlines cross the wire as REMAINING budget: each RPC computes
/// options.deadline - now at send time, the server re-anchors against
/// its own clock, and the client caps its socket read timeout to the
/// same budget, so an expired deadline fails at whichever side notices
/// first.
///
/// Thread-safety: safe for concurrent use; connections are pooled, each
/// RPC checks one out (or dials a new one) and returns it on success.
class RemoteRetrievalBackend : public RetrievalBackend {
 public:
  /// `embedder` runs the client-side embedding step and must match the
  /// remote database's dimensionality.  Borrowed, must outlive this.
  RemoteRetrievalBackend(const Embedder* embedder, std::string host,
                         uint16_t port, RemoteBackendOptions options = {});

  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override;

  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override;

  /// Ships the embedded query; returns the remote backend's top-p.
  StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query,
      const RetrievalOptions& options) const override;

  /// Embeds client-side, ships the row (kInsert).
  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override;
  Status InsertEmbedded(size_t db_id, const Vector& embedded_row) override;
  Status Remove(size_t db_id) override;

  /// Remote full retrieval (kRetrieve) for servers configured with a
  /// RawQueryResolver: ships the RAW query, embedding and refine both
  /// run server-side.  Not part of the scatter path — a convenience for
  /// thin clients that cannot evaluate dx themselves.
  StatusOr<RetrievalResponse> RetrieveRaw(
      const std::vector<double>& raw_query,
      const RetrievalOptions& options) const;

  /// Remote size via kInfo; 0 when the peer is unreachable (size() has
  /// no error channel — used for load hints, not correctness).
  size_t size() const override;

  /// Remote responses already carry database ids.
  size_t db_id_of(size_t neighbor_index) const override {
    return neighbor_index;
  }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  /// One RPC: checkout/dial, send, receive, decode, return-to-pool.
  /// Applies the deadline budget from options and the read-retry policy.
  StatusOr<WireResponse> Call(WireRequest request) const;
  StatusOr<WireResponse> CallOnce(const WireRequest& request,
                                  const std::string& payload) const;
  /// Dials a fresh connection, retrying refused/unreachable connects
  /// with doubling backoff per options.reconnect_* within the deadline
  /// budget (0 = no deadline).
  StatusOr<Socket> Dial(uint64_t deadline_budget_ns) const;

  const Embedder* embedder_;
  std::string host_;
  uint16_t port_;
  RemoteBackendOptions options_;

  mutable std::mutex pool_mu_;
  mutable std::vector<Socket> pool_;

  obs::Counter* rpcs_total_;
  obs::Counter* rpc_errors_total_;
  obs::Counter* rpc_retries_total_;
  obs::Counter* reconnects_total_;
  obs::Histogram* rpc_latency_ns_;
};

}  // namespace net
}  // namespace qse

#endif  // QSE_NET_REMOTE_BACKEND_H_
