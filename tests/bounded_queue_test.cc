#include "src/util/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

namespace qse {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueueTest, FifoOrderWithinCapacity) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushFailsWhenFullWithoutConsumingValue) {
  BoundedQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(1)));
  auto v = std::make_unique<int>(2);
  EXPECT_FALSE(q.TryPush(std::move(v)));
  // The rejected value is still ours: the server relies on this to
  // complete the request's promise with kResourceExhausted.
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 2);
}

TEST(BoundedQueueTest, TryPushWithReasonDistinguishesFullFromClosed) {
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.TryPushWithReason(1), QueuePushResult::kAccepted);
  EXPECT_EQ(q.TryPushWithReason(2), QueuePushResult::kFull);
  q.Close();
  // Closed wins over full: the reason is decided under the queue lock.
  EXPECT_EQ(q.TryPushWithReason(3), QueuePushResult::kClosed);
}

TEST(BoundedQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, PopForTimesOut) {
  BoundedQueue<int> q(2);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
  // Non-positive timeout behaves like TryPop.
  EXPECT_FALSE(q.PopFor(-1ms).has_value());
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    EXPECT_TRUE(q.TryPush(42));
  });
  EXPECT_EQ(q.Pop(), 42);  // Blocks until the producer delivers.
  producer.join();
}

TEST(BoundedQueueTest, PushBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // Blocks: queue is full.
    pushed.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenTerminates) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(1));
  ASSERT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(3));
  // Queued items drain, then pops report termination.
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.PopFor(1ms).has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedPopAndPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::atomic<int> results{0};
  std::thread blocked_push([&] {
    EXPECT_FALSE(q.Push(2));  // Woken by Close, reports failure.
    results.fetch_add(1);
  });
  BoundedQueue<int> empty(1);
  std::thread blocked_pop([&] {
    EXPECT_FALSE(empty.Pop().has_value());
    results.fetch_add(1);
  });
  std::this_thread::sleep_for(10ms);
  q.Close();
  empty.Close();
  blocked_push.join();
  blocked_pop.join();
  EXPECT_EQ(results.load(), 2);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersDeliverEachItemOnce) {
  const size_t kProducers = 4, kConsumers = 3, kPerProducer = 500;
  BoundedQueue<size_t> q(16);
  std::mutex mu;
  std::set<size_t> seen;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::optional<size_t> v = q.Pop();
        if (!v.has_value()) return;
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
      }
    });
  }
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace qse
