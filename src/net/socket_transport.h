#ifndef QSE_NET_SOCKET_TRANSPORT_H_
#define QSE_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace net {

/// Timeouts and limits for one connection.  Blocking sockets with
/// kernel-enforced timeouts (SO_RCVTIMEO / SO_SNDTIMEO): no event loop,
/// no partial-state machine — the serving tier's concurrency lives in
/// threads, and a stuck peer costs at most one timeout.
struct TransportOptions {
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds read_timeout{5000};
  std::chrono::milliseconds write_timeout{5000};
  /// Frames larger than this are refused — before allocation on the
  /// receive side.  Must match the codec's kMaxFrameBytes expectations.
  uint32_t max_frame_bytes = 64u << 20;
};

/// Error taxonomy (StatusFromErrno):
///   * kUnavailable      — the peer is gone or unreachable (connection
///                         refused / reset, broken pipe, clean EOF at a
///                         frame boundary).  Retryable against another
///                         replica.
///   * kDeadlineExceeded — a connect/read/write timeout fired.
///   * kDataLoss         — the byte stream violated its own framing
///                         (EOF mid-frame, implausible length prefix).
///                         The connection is unusable.
///   * kIOError          — anything else errno has to offer.
Status StatusFromErrno(const std::string& context, int err);

/// One connected TCP stream, move-only RAII over the fd.  SendFrame /
/// RecvFrame speak the length-prefixed framing the wire codec assumes.
/// Not thread-safe: one request/response exchange at a time per socket
/// (the client stub pools sockets instead of sharing them).
class Socket {
 public:
  Socket() = default;
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept { *this = std::move(other); }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to an IPv4 literal (e.g. "127.0.0.1") with
  /// options.connect_timeout, then switches the socket to blocking mode
  /// with the read/write timeouts installed and TCP_NODELAY set (every
  /// frame is a complete request or response; Nagle only adds latency).
  static StatusOr<Socket> Connect(const std::string& host, uint16_t port,
                                  const TransportOptions& options);

  bool valid() const { return fd_ >= 0; }

  /// Writes `[u32 length][payload]`.  InvalidArgument when the payload
  /// exceeds max_frame_bytes.
  Status SendFrame(const std::string& payload);

  /// Reads one complete frame payload.  A clean EOF before any header
  /// byte is kUnavailable (the peer closed between frames, the normal
  /// shutdown path); EOF anywhere inside a frame is kDataLoss.  A length
  /// prefix beyond max_frame_bytes is kDataLoss, detected before any
  /// allocation.
  StatusOr<std::string> RecvFrame();

  /// Overrides the read timeout for subsequent reads — how per-request
  /// deadline budgets bound the wait for a response.
  Status SetReadTimeout(std::chrono::nanoseconds timeout);

  /// True when the connection is readable (or errored) while it should
  /// be idle — how the connection pool detects a peer that died between
  /// requests.  In this request/response protocol a healthy idle
  /// connection is never readable (the peer only speaks when spoken to),
  /// so pending bytes, EOF or RST all mean: do not reuse.  Non-blocking.
  bool StaleWhileIdle() const;

  /// Half-closes both directions without releasing the fd: a thread
  /// blocked in RecvFrame on this socket wakes with an error.  Safe to
  /// call from another thread while RecvFrame runs; Close/destruction is
  /// not.
  void ShutdownBoth();

  void Close();

 private:
  friend class ServerSocket;
  Socket(int fd, const TransportOptions& options)
      : fd_(fd), options_(options) {}

  Status SendAll(const void* data, size_t n);
  /// Reads exactly n bytes.  `at_frame_start` selects the clean-EOF
  /// status (kUnavailable vs kDataLoss).
  Status RecvAll(void* data, size_t n, bool at_frame_start);

  int fd_ = -1;
  TransportOptions options_;
};

/// A listening socket.  Accept blocks (in a poll loop) until a peer
/// connects or Shutdown is called from any thread.
class ServerSocket {
 public:
  ServerSocket() = default;
  ~ServerSocket() { Close(); }
  ServerSocket(ServerSocket&& other) noexcept { *this = std::move(other); }
  ServerSocket& operator=(ServerSocket&& other) noexcept;
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, read it back from
  /// port()) and listens.  Loopback only: this transport is a shard
  /// interconnect, not an internet-facing endpoint.
  static StatusOr<ServerSocket> Listen(uint16_t port,
                                       const TransportOptions& options = {});

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Blocks until a connection arrives (returned with the listener's
  /// TransportOptions installed) or Shutdown is called (kUnavailable).
  StatusOr<Socket> Accept();

  /// Makes every current and future Accept return kUnavailable.
  /// Idempotent; callable from any thread.
  void Shutdown();

  void Close();

 private:
  ServerSocket(int fd, uint16_t port, const TransportOptions& options)
      : fd_(fd),
        port_(port),
        options_(options),
        shutdown_(std::make_shared<std::atomic<bool>>(false)) {}

  int fd_ = -1;
  uint16_t port_ = 0;
  TransportOptions options_;
  /// shared_ptr so Shutdown stays safe across moves of the listener.
  std::shared_ptr<std::atomic<bool>> shutdown_;
};

}  // namespace net
}  // namespace qse

#endif  // QSE_NET_SOCKET_TRANSPORT_H_
