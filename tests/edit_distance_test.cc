#include "src/distance/edit_distance.h"

#include <string>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(EditDistanceTest, SingleOperations) {
  EXPECT_EQ(EditDistance("abc", "abcd"), 1u);  // Insert.
  EXPECT_EQ(EditDistance("abcd", "abc"), 1u);  // Delete.
  EXPECT_EQ(EditDistance("abc", "axc"), 1u);   // Substitute.
}

TEST(EditDistanceTest, MetricAxiomsOnRandomStrings) {
  Rng rng(3);
  auto random_string = [&](size_t max_len) {
    std::string s;
    size_t len = rng.Index(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Index(4));
    }
    return s;
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::string a = random_string(12), b = random_string(12),
                c = random_string(12);
    size_t ab = EditDistance(a, b);
    size_t ba = EditDistance(b, a);
    size_t ac = EditDistance(a, c);
    size_t bc = EditDistance(b, c);
    EXPECT_EQ(ab, ba);                      // Symmetry.
    EXPECT_LE(ac, ab + bc);                 // Triangle inequality.
    EXPECT_EQ(EditDistance(a, a), 0u);      // Identity.
  }
}

TEST(EditDistanceTest, BoundedByLongerLength) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a, b;
    for (size_t i = 0; i < rng.Index(10) + 1; ++i) {
      a += static_cast<char>('a' + rng.Index(26));
    }
    for (size_t i = 0; i < rng.Index(10) + 1; ++i) {
      b += static_cast<char>('a' + rng.Index(26));
    }
    EXPECT_LE(EditDistance(a, b), std::max(a.size(), b.size()));
    EXPECT_GE(EditDistance(a, b),
              a.size() > b.size() ? a.size() - b.size()
                                  : b.size() - a.size());
  }
}

TEST(WeightedEditDistanceTest, UnitCostsMatchPlain) {
  EXPECT_DOUBLE_EQ(WeightedEditDistance("kitten", "sitting", 1, 1, 1), 3.0);
}

TEST(WeightedEditDistanceTest, ExpensiveSubstitutionPrefersInsertDelete) {
  // With substitution cost 3 and insert+delete = 2, "a"->"b" costs 2.
  EXPECT_DOUBLE_EQ(WeightedEditDistance("a", "b", 1, 1, 3), 2.0);
}

TEST(WeightedEditDistanceTest, AsymmetricCostsBreakSymmetry) {
  // Insert cheap, delete expensive: growing is cheaper than shrinking.
  double grow = WeightedEditDistance("ab", "abxy", 0.5, 5, 1);
  double shrink = WeightedEditDistance("abxy", "ab", 0.5, 5, 1);
  EXPECT_LT(grow, shrink);
}

TEST(BandedEditDistanceTest, LargeBandMatchesExact) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a, b;
    for (size_t i = 0; i < rng.Index(8) + 1; ++i) {
      a += static_cast<char>('a' + rng.Index(3));
    }
    for (size_t i = 0; i < rng.Index(8) + 1; ++i) {
      b += static_cast<char>('a' + rng.Index(3));
    }
    EXPECT_EQ(BandedEditDistance(a, b, 16), EditDistance(a, b));
  }
}

TEST(BandedEditDistanceTest, IsUpperBound) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a, b;
    for (size_t i = 0; i < 10; ++i) {
      a += static_cast<char>('a' + rng.Index(3));
      b += static_cast<char>('a' + rng.Index(3));
    }
    for (size_t band : {0u, 1u, 2u, 4u}) {
      EXPECT_GE(BandedEditDistance(a, b, band), EditDistance(a, b));
    }
  }
}

}  // namespace
}  // namespace qse
