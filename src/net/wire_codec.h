#ifndef QSE_NET_WIRE_CODEC_H_
#define QSE_NET_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/retrieval/retrieval_backend.h"
#include "src/util/status.h"
#include "src/util/top_k.h"

namespace qse {
namespace net {

/// The QSE wire protocol, version 1.
///
/// Every message travels as one length-prefixed frame
/// (`[u32 length][payload]`, Socket::SendFrame/RecvFrame) whose payload
/// starts with a fixed preamble:
///
///     u32 magic    "QSEW"           — frame is a QSE wire payload
///     u16 version  kWireVersion     — whole-payload layout version
///     u16 tag      WireOp / kResponseTag
///
/// All integers and doubles are host-order little-endian, the same
/// contract as util/serialize (nodes of one deployment share an
/// architecture family).  Doubles cross the wire as raw bit patterns, so
/// scores round-trip bit-identically.
///
/// Decoding is defensive end to end: every length prefix is validated
/// against the bytes actually remaining in the frame BEFORE any
/// allocation (util/serialize ByteReader), plus per-field plausibility
/// caps.  Structural violations are kDataLoss; well-framed but
/// unacceptable content (bad magic, unknown version or op, out-of-range
/// enums) is kInvalidArgument.  A decoder never crashes and never
/// allocates more than the frame it was handed.
inline constexpr uint32_t kWireMagic = 0x57455351u;  // "QSEW" little-endian
inline constexpr uint16_t kWireVersion = 1;

/// Frames a conforming peer may send; anything larger is a framing error
/// (kDataLoss) and the connection is dropped without allocating.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Plausibility caps for individual fields (all far above anything the
/// serving stack produces, all small enough that a hostile prefix cannot
/// balloon memory).
inline constexpr uint64_t kMaxWireDims = 1u << 20;
inline constexpr uint64_t kMaxWireNeighbors = 1u << 22;
inline constexpr uint64_t kMaxWireShardStats = 1u << 16;
inline constexpr uint64_t kMaxWireSpans = 8192;
inline constexpr uint64_t kMaxWireSpanName = 256;
inline constexpr uint64_t kMaxWireTenantId = 4096;
inline constexpr uint64_t kMaxWireMessage = 1u << 16;

/// Request operations.
enum class WireOp : uint16_t {
  /// Filter-only scan of the server's backend: `query` is the EMBEDDED
  /// query, the response carries the backend's top-p as (db id, filter
  /// score).  The client refines with its own dx — the closure that
  /// cannot cross the wire — so a scatter over kScan shards is
  /// bit-identical to the in-process sharded engine.
  kScan = 1,
  /// Full server-side retrieval: `query` is a RAW query vector the
  /// server resolves to a dx via its configured RawQueryResolver.
  /// FailedPrecondition when the server has none.
  kRetrieve = 2,
  /// Insert `query` (an EMBEDDED row) under `db_id`.
  kInsert = 3,
  /// Remove `db_id`.
  kRemove = 4,
  /// Backend info (currently: size) — the remote size() probe.
  kInfo = 5,
};

/// The payload tag marking a response frame.
inline constexpr uint16_t kResponseTag = 0x8000;

/// One request envelope.  `options.deadline` does NOT cross the wire
/// (absolute monotonic times mean nothing to another process); the
/// REMAINING budget does, and the decoder re-anchors it: DecodeRequest
/// leaves options.deadline untouched, and RetrievalServer sets it to
/// arrival + deadline_budget_ns.  options.audit_monitor never crosses
/// (client-side only).
struct WireRequest {
  WireOp op = WireOp::kScan;
  /// Remaining deadline budget at send time, 0 = no deadline.  The
  /// server rejects a request whose budget is already exhausted on
  /// arrival with kDeadlineExceeded, before scanning anything.
  uint64_t deadline_budget_ns = 0;
  /// When true the server records spans for this request and returns
  /// them in the response, so one sampled trace covers client and
  /// server work.
  bool want_trace = false;
  RetrievalOptions options;
  /// kInsert / kRemove target.
  uint64_t db_id = 0;
  /// kScan: embedded query; kRetrieve: raw query; kInsert: embedded row.
  std::vector<double> query;
};

/// One server-side span, times in ns relative to the SERVER's receipt of
/// the request.  The client grafts these onto its own trace at the RPC
/// span's start (clocks of two processes are never compared).  Span args
/// do not cross the wire.
struct WireSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

/// One response envelope: a Status plus whichever result fields the op
/// fills.  `neighbors.index` values are always DATABASE IDS — the server
/// translates via its backend's db_id_of before encoding, because
/// shard-local row numbers are meaningless in another process.
struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// kRetrieve: refined top-k.  kScan: the filter top-p candidates.
  std::vector<ScoredIndex> neighbors;
  uint64_t exact_distances = 0;
  uint64_t embedding_distances = 0;
  /// kRetrieve with want_stats.
  std::vector<ShardScanStats> shard_stats;
  /// kScan accounting (ScanCandidatesResult::rows / rows_pruned).
  uint64_t rows = 0;
  uint64_t rows_pruned = 0;
  /// kInfo, and piggybacked on successful mutations.
  uint64_t db_size = 0;
  /// Server-side spans for want_trace requests.
  std::vector<WireSpan> spans;
};

/// Serializes a request into a frame payload (preamble included, length
/// prefix excluded — the transport adds that).
std::string EncodeRequest(const WireRequest& request);

/// Parses a frame payload into `out`.  kInvalidArgument for well-framed
/// but unacceptable content, kDataLoss for structural corruption; `out`
/// is unspecified on error.
Status DecodeRequest(const std::string& payload, WireRequest* out);

std::string EncodeResponse(const WireResponse& response);
Status DecodeResponse(const std::string& payload, WireResponse* out);

}  // namespace net
}  // namespace qse

#endif  // QSE_NET_WIRE_CODEC_H_
