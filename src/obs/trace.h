#ifndef QSE_OBS_TRACE_H_
#define QSE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/timer.h"

namespace qse {
namespace obs {

/// One span argument: a key plus an integer or a static string.  Static
/// strings only (span names and arg values come from string literals or
/// process-lifetime tables like SimdLevelName), so recording never
/// allocates for the value.
struct TraceArg {
  const char* key;
  int64_t int_value = 0;
  const char* str_value = nullptr;  // non-null wins over int_value
};

/// One closed interval of work inside a request, in nanoseconds since
/// the owning trace's epoch.
struct TraceSpan {
  const char* name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // small stable per-thread id, not the OS tid
  std::vector<TraceArg> args;
};

/// Timestamps and spans for one sampled request, from Submit to
/// completion.  Threads append concurrently (each span is recorded
/// once, when it closes) under a mutex — sampled requests are rare, so the
/// lock is not a hot path.  All times come from MonotonicClock, the
/// same source as deadlines, so spans and deadline decisions line up.
class RequestTrace {
 public:
  RequestTrace() : epoch_(MonotonicClock::now()) {}

  /// Nanoseconds since this trace's epoch; the time base for spans.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            MonotonicClock::now() - epoch_)
            .count());
  }

  MonotonicClock::time_point epoch() const { return epoch_; }

  void AddSpan(TraceSpan span);

  /// Convenience: a span from start_ns to now on the calling thread.
  void CloseSpan(const char* name, uint64_t start_ns,
                 std::vector<TraceArg> args = {});

  std::vector<TraceSpan> spans() const;

  /// Chrome trace_event JSON ("ph":"X" complete events; ts/dur in
  /// microseconds), loadable in Perfetto / chrome://tracing.
  std::string ChromeTraceJson() const;

  /// A small stable id for the calling thread, used as the span tid so
  /// the trace viewer lays concurrent shard scans on separate rows.
  static uint32_t ThisThreadId();

 private:
  MonotonicClock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// Fraction of the span named `denominator_name` (default "request")
/// covered by the union of all other spans in the trace.  1.0 means no
/// wall-clock between admit and completion is unaccounted for.  Returns
/// 0 when the denominator span is missing or empty.
double SpanCoverage(const std::vector<TraceSpan>& spans,
                    const char* denominator_name = "request");

/// Interns a dynamic string into a process-lifetime pool and returns a
/// stable `const char*` — the bridge between wire-decoded span names
/// (owned std::strings) and TraceSpan's static-string contract.  The
/// pool is capped: past kInternPoolCap distinct strings, a shared
/// placeholder is returned instead, so a hostile peer cannot grow
/// process memory through novel span names.  Thread-safe; interned
/// pointers stay valid for the process lifetime.
inline constexpr size_t kInternPoolCap = 4096;
const char* InternString(const std::string& s);

#ifdef QSE_DISABLE_TRACING
/// Tracing compiled out: recording collapses to nothing, the types stay
/// so call sites need no #ifdefs.
inline uint64_t TraceNowNs(const RequestTrace*) { return 0; }
class ScopedSpan {
 public:
  ScopedSpan(RequestTrace*, const char*) {}
  void AddArg(const char*, int64_t) {}
  void AddArg(const char*, const char*) {}
  ~ScopedSpan() = default;
};

inline void TraceMark(RequestTrace*, const char*, uint64_t,
                      std::vector<TraceArg> = {}) {}
#else
/// RAII span: stamps start at construction, closes at destruction.  A
/// null trace makes every operation a no-op, so untraced requests pay
/// one branch per span site and nothing else.
class ScopedSpan {
 public:
  ScopedSpan(RequestTrace* trace, const char* name)
      : trace_(trace), name_(name) {
    if (trace_ != nullptr) start_ns_ = trace_->NowNs();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddArg(const char* key, int64_t value) {
    if (trace_ != nullptr) args_.push_back(TraceArg{key, value, nullptr});
  }
  void AddArg(const char* key, const char* value) {
    if (trace_ != nullptr) args_.push_back(TraceArg{key, 0, value});
  }

  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->CloseSpan(name_, start_ns_, std::move(args_));
    }
  }

 private:
  RequestTrace* trace_;
  const char* name_;
  uint64_t start_ns_ = 0;
  std::vector<TraceArg> args_;
};

/// Records a span with an explicit start (for intervals whose start was
/// stamped earlier, e.g. queue wait measured from the admit timestamp).
inline void TraceMark(RequestTrace* trace, const char* name,
                      uint64_t start_ns, std::vector<TraceArg> args = {}) {
  if (trace != nullptr) trace->CloseSpan(name, start_ns, std::move(args));
}

/// Null-safe "time since this trace's epoch" for stamping span starts;
/// 0 for untraced requests (and always when tracing is compiled out).
inline uint64_t TraceNowNs(const RequestTrace* trace) {
  return trace != nullptr ? trace->NowNs() : 0;
}
#endif  // QSE_DISABLE_TRACING

}  // namespace obs
}  // namespace qse

#endif  // QSE_OBS_TRACE_H_
