// Time-series similarity search under constrained Dynamic Time Warping —
// the paper's second workload (Sec. 9, the [32] dataset protocol).
//
// Compares three ways to answer 1-NN queries over the same database:
//   * brute-force exact scan,
//   * LB_Keogh lower-bounding exact search (the [32]-style comparator),
//   * Se-QS approximate filter-and-refine (the paper's method).
//
// Build: cmake --build build && ./build/examples/timeseries_retrieval
#include <cstdio>
#include <numeric>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/data/timeseries_generator.h"
#include "src/distance/dtw.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/exact_knn.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/lb_index.h"

int main() {
  using namespace qse;

  const size_t kDbSize = 800, kNumQueries = 40;
  const double kBand = 0.1;  // 10% cDTW band, as in the paper.

  TimeSeriesGeneratorParams params;
  params.fixed_length = true;  // Needed by LB_Keogh.
  TimeSeriesGenerator gen(params, /*seed=*/32);
  std::vector<Series> all = gen.Generate(kDbSize + kNumQueries);
  std::vector<Series> db(all.begin(), all.begin() + kDbSize);

  ObjectOracle<Series> oracle(std::move(all),
                              [kBand](const Series& a, const Series& b) {
                                return ConstrainedDtw(a, b, kBand);
                              });
  std::vector<size_t> db_ids(kDbSize);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  // --- Train Se-QS.
  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 4000;
  config.k1 = 9;  // Paper's setting for the time-series data.
  config.boost.rounds = 40;
  config.boost.embeddings_per_round = 32;
  config.boost.query_sensitive = true;
  std::vector<size_t> sample(db_ids.begin(), db_ids.begin() + 150);
  auto artifacts = TrainBoostMap(oracle, sample, sample, config);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  QseEmbedderAdapter embedder(&artifacts->model);
  EmbeddedDatabase embedded = EmbedDatabase(embedder, oracle, db_ids);
  QuerySensitiveScorer scorer(&artifacts->model);
  RetrievalEngine retriever(&embedder, &scorer, &embedded, db_ids);

  LbDtwIndex lb_index(db, kBand);

  size_t qse_cost = 0, lb_cost = 0, qse_correct = 0;
  const size_t p = 50;
  for (size_t q = kDbSize; q < kDbSize + kNumQueries; ++q) {
    auto dx = [&](size_t id) { return oracle.Distance(q, id); };
    auto exact = ExactKnn(oracle, q, db_ids, 1);

    auto r_or = retriever.Retrieve({dx, RetrievalOptions(1, p)});
    if (!r_or.ok()) {
      std::fprintf(stderr, "retrieval failed: %s\n",
                   r_or.status().ToString().c_str());
      return 1;
    }
    RetrievalResponse r = std::move(r_or).value();
    qse_cost += r.exact_distances;
    if (r.neighbors[0].index == exact[0].index) ++qse_correct;

    LbDtwIndex::Result lbr = lb_index.Search(oracle.object(q), 1);
    lb_cost += lbr.exact_evaluations;
  }

  std::printf("1-NN retrieval over %zu series, %zu queries, cDTW band "
              "%.0f%%\n\n",
              kDbSize, kNumQueries, kBand * 100);
  std::printf("%-34s %12s %10s %9s\n", "method", "avg distances", "speedup",
              "exact?");
  std::printf("%-34s %12zu %9.1fx %9s\n", "brute-force scan", kDbSize, 1.0,
              "yes");
  std::printf("%-34s %12zu %9.1fx %9s\n", "LB_Keogh lower-bounding index",
              lb_cost / kNumQueries,
              static_cast<double>(kDbSize) /
                  (static_cast<double>(lb_cost) / kNumQueries),
              "yes");
  std::printf("%-34s %12zu %9.1fx %6zu/%zu\n",
              "Se-QS filter-and-refine (p = 50)",
              qse_cost / kNumQueries,
              static_cast<double>(kDbSize) /
                  (static_cast<double>(qse_cost) / kNumQueries),
              qse_correct, kNumQueries);
  std::printf("\nThe embedding answers queries approximately but with far "
              "fewer exact cDTW\nevaluations — the trade-off the paper "
              "quantifies in Figure 5 and Table 1.\n");
  return 0;
}
