#include "src/distance/lp.h"

#include <cassert>
#include <cmath>

namespace qse {

double L1Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double SquaredL2Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double L2Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

double LInfDistance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = std::fabs(a[i] - b[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

double LpDistance(const Vector& a, const Vector& b, double p) {
  assert(a.size() == b.size());
  assert(p >= 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::fabs(a[i] - b[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

}  // namespace qse
