#ifndef QSE_DISTANCE_DTW_H_
#define QSE_DISTANCE_DTW_H_

#include <vector>

#include "src/distance/series.h"

namespace qse {

/// Constrained Dynamic Time Warping between two multi-dimensional series,
/// with a Sakoe-Chiba style band.
///
/// * Per-point ground cost: L1 across dimensions (series must have equal
///   dims).
/// * Band semantics (matching [32] as cited by the paper): the warping
///   window half-width is `band_fraction` times the length of the
///   *shorter* series; for unequal lengths the window is centred on the
///   scaled diagonal j ~ i * len(b)/len(a) so the path stays connected.
/// * The value is the accumulated cost of the optimal monotone alignment;
///   it obeys symmetry but NOT the triangle inequality — cDTW is
///   non-metric, which is exactly the regime the paper targets.
///
/// Returns +infinity only if either series is empty.
double ConstrainedDtw(const Series& a, const Series& b,
                      double band_fraction = 0.1);

/// Same, with an absolute window half-width `window` (in samples).
double ConstrainedDtwWindow(const Series& a, const Series& b, long window);

/// Unconstrained DTW (window = max length); provided for tests and for
/// band-sensitivity sweeps.
double Dtw(const Series& a, const Series& b);

/// Running min/max envelope of a series under a +-window band, per
/// dimension; the ingredient of the LB_Keogh lower bound.
struct DtwEnvelope {
  size_t dims = 1;
  // Flat, point-major like Series: lower[t * dims + d].
  std::vector<double> lower;
  std::vector<double> upper;

  size_t length() const { return dims == 0 ? 0 : lower.size() / dims; }
};

/// Builds the band envelope of `s` with half-width `window` samples.
DtwEnvelope BuildEnvelope(const Series& s, long window);

/// LB_Keogh lower bound: sum over aligned samples of the L1 distance from
/// c to the envelope tube of the query.  Requires equal length and dims.
/// For any series c of the same length, LbKeogh(env(q, w), c) <=
/// ConstrainedDtwWindow(q, c, w); the property suite verifies this.
double LbKeogh(const DtwEnvelope& query_envelope, const Series& c);

}  // namespace qse

#endif  // QSE_DISTANCE_DTW_H_
