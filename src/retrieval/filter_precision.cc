#include "src/retrieval/filter_precision.h"

#include <cfloat>
#include <cmath>
#include <limits>

namespace qse {
namespace {

/// Machine epsilon of float32 arithmetic.  FLT_EPSILON is a full ulp of
/// 1.0 — twice the worst-case rounding of any single operation — which
/// is the 2x safety margin the envelope constants lean on.
constexpr double kEps32 = FLT_EPSILON;

/// Relative envelope of a sixteen-lane float32 sum of d terms, each
/// term carrying a handful of input-rounding and mul/sub roundings:
/// d/16 additions per lane plus the depth-4 reduction tree plus ~8
/// per-term roundings, rounded up generously.
double F32RelativeEnvelope(size_t d) {
  return kEps32 * (static_cast<double>(d) / 16.0 + 16.0);
}

}  // namespace

const char* FilterPrecisionName(FilterPrecision p) {
  switch (p) {
    case FilterPrecision::kExact64:
      return "exact64";
    case FilterPrecision::kFilter32:
      return "filter32";
    case FilterPrecision::kFilter8:
      return "filter8";
  }
  return "unknown";
}

uint32_t ShadowMaskFor(FilterPrecision p) {
  switch (p) {
    case FilterPrecision::kExact64:
      return 0;
    case FilterPrecision::kFilter32:
      return kShadowFloat32;
    case FilterPrecision::kFilter8:
      return kShadowInt8;
  }
  return 0;
}

int8_t QuantizeToInt8(double x, float scale) {
  if (!(scale > 0.0f)) return 0;
  long q = std::lround(x / static_cast<double>(scale));
  if (q > 127) q = 127;
  if (q < -127) q = -127;
  return static_cast<int8_t>(q);
}

bool FitsInt8(double x, float scale) {
  if (!(scale > 0.0f)) return x == 0.0;
  return std::fabs(x) <= 127.5 * static_cast<double>(scale);
}

double WidenedAbandonThreshold(double threshold,
                               const ReducedPrecisionBound& bound) {
  if (!(bound.relative < 1.0) || std::isinf(threshold)) {
    return std::numeric_limits<double>::infinity();
  }
  return (threshold * (1.0 + bound.relative) + bound.additive) /
         (1.0 - bound.relative);
}

ReducedPrecisionBound F32BoundWeightedL1(const double* w, const double* q,
                                         size_t d) {
  double wq = 0.0;
  for (size_t j = 0; j < d; ++j) {
    wq += (w != nullptr ? w[j] : 1.0) * std::fabs(q[j]);
  }
  return {4.0 * kEps32 * wq, F32RelativeEnvelope(d)};
}

ReducedPrecisionBound F32BoundSquaredL2(const double* q, size_t d) {
  double qq = 0.0;
  for (size_t j = 0; j < d; ++j) qq += q[j] * q[j];
  return {4.0 * kEps32 * qq, F32RelativeEnvelope(d)};
}

ReducedPrecisionBound I8BoundWeightedL1(const double* w, const double* q,
                                        const int8_t* qq, const float* scales,
                                        size_t d) {
  double add = 0.0;
  for (size_t j = 0; j < d; ++j) {
    double s = scales[j];
    double resid = std::fabs(q[j] - s * qq[j]) + 0.5 * s;
    add += (w != nullptr ? w[j] : 1.0) * resid;
  }
  return {add, F32RelativeEnvelope(d)};
}

ReducedPrecisionBound I8BoundSquaredL2(const double* q, const int8_t* qq,
                                       const float* scales, size_t d) {
  double add = 0.0;
  for (size_t j = 0; j < d; ++j) {
    double s = scales[j];
    double e = std::fabs(q[j] - s * qq[j]) + 0.5 * s;
    add += e * (2.0 * (std::fabs(q[j]) + 127.5 * s) + e);
  }
  return {add, F32RelativeEnvelope(d)};
}

float FloatAtLeast(double x) {
  float f = static_cast<float>(x);
  if (static_cast<double>(f) < x) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace qse
