#include "src/data/timeseries_generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/distance/dtw.h"

namespace qse {
namespace {

TEST(TimeSeriesGeneratorTest, SeedCountAndShape) {
  TimeSeriesGeneratorParams params;
  params.num_seeds = 10;
  params.dims = 3;
  params.base_length = 64;
  TimeSeriesGenerator gen(params, 1);
  EXPECT_EQ(gen.num_seeds(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.seed(i).dims(), 3u);
    EXPECT_EQ(gen.seed(i).length(), 64u);
  }
}

TEST(TimeSeriesGeneratorTest, DeterministicBySeed) {
  TimeSeriesGeneratorParams params;
  TimeSeriesGenerator g1(params, 99), g2(params, 99);
  Series a = g1.MakeVariant(3);
  Series b = g2.MakeVariant(3);
  ASSERT_EQ(a.length(), b.length());
  for (size_t t = 0; t < a.length(); ++t) {
    for (size_t d = 0; d < a.dims(); ++d) {
      EXPECT_DOUBLE_EQ(a.at(t, d), b.at(t, d));
    }
  }
}

TEST(TimeSeriesGeneratorTest, VariantsAreMeanNormalized) {
  TimeSeriesGenerator gen({}, 5);
  for (size_t i = 0; i < 6; ++i) {
    Series v = gen.MakeVariant(i);
    for (size_t d = 0; d < v.dims(); ++d) {
      double mean = 0.0;
      for (size_t t = 0; t < v.length(); ++t) mean += v.at(t, d);
      mean /= static_cast<double>(v.length());
      EXPECT_NEAR(mean, 0.0, 1e-9);
    }
  }
}

TEST(TimeSeriesGeneratorTest, VariableLengthsWhenRequested) {
  TimeSeriesGeneratorParams params;
  params.base_length = 80;
  params.length_jitter = 0.25;
  params.fixed_length = false;
  TimeSeriesGenerator gen(params, 21);
  bool saw_short = false, saw_long = false;
  for (size_t i = 0; i < 40; ++i) {
    size_t len = gen.MakeVariant(i).length();
    EXPECT_GE(len, 60u - 1);
    EXPECT_LE(len, 100u + 1);
    if (len < 80) saw_short = true;
    if (len > 80) saw_long = true;
  }
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_long);
}

TEST(TimeSeriesGeneratorTest, FixedLengthWhenRequested) {
  TimeSeriesGeneratorParams params;
  params.base_length = 48;
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, 22);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.MakeVariant(i).length(), 48u);
  }
}

TEST(TimeSeriesGeneratorTest, SameSeedVariantsCloserThanCrossSeed) {
  // The workload's similarity structure: variants of the same seed should
  // on average be closer under cDTW than variants of different seeds —
  // that structure is what nearest-neighbor retrieval exploits.
  TimeSeriesGeneratorParams params;
  params.num_seeds = 8;
  params.base_length = 64;
  TimeSeriesGenerator gen(params, 31);
  double intra = 0.0, inter = 0.0;
  int n = 12;
  for (int i = 0; i < n; ++i) {
    size_t fam = static_cast<size_t>(i) % 8;
    Series a = gen.MakeVariant(fam);
    Series b = gen.MakeVariant(fam);
    Series c = gen.MakeVariant(fam + 1);
    intra += ConstrainedDtw(a, b, 0.1);
    inter += ConstrainedDtw(a, c, 0.1);
  }
  EXPECT_LT(intra, inter);
}

TEST(TimeSeriesGeneratorTest, GenerateRoundRobinsSeedFamilies) {
  TimeSeriesGeneratorParams params;
  params.num_seeds = 4;
  TimeSeriesGenerator gen(params, 41);
  auto batch = gen.Generate(8);
  EXPECT_EQ(batch.size(), 8u);
  for (const Series& s : batch) {
    EXPECT_EQ(s.dims(), params.dims);
    EXPECT_GT(s.length(), 0u);
  }
}

TEST(TimeSeriesGeneratorTest, WarpStaysWithinSeedRangeRegression) {
  // Regression: the warp normalization once mutated warp[0] in place and
  // kept reading warp.front() afterwards, pushing interpolation positions
  // past the end of the seed buffer (silent OOB reads in release builds).
  // Generating many variants at high warp strength now must stay within
  // bounds (Series::at checks are always on) and produce values bounded
  // by the seed's value range (up to noise) — garbage heap reads would
  // blow past it.
  TimeSeriesGeneratorParams params;
  params.num_seeds = 6;
  params.base_length = 64;
  params.warp_strength = 1.0;  // Extreme warping.
  params.amplitude_noise = 0.0;
  TimeSeriesGenerator gen(params, 61);
  for (size_t i = 0; i < 60; ++i) {
    size_t fam = i % 6;
    Series v = gen.MakeVariant(fam);
    const Series& seed = gen.seed(fam);
    double lo = 1e300, hi = -1e300;
    for (double x : seed.values()) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    // Mean subtraction shifts values; allow the full seed span as slack.
    double span = hi - lo + 1e-9;
    for (double x : v.values()) {
      EXPECT_GE(x, lo - span);
      EXPECT_LE(x, hi + span);
    }
  }
}

TEST(TimeSeriesGeneratorTest, WarpIsMonotoneShapePreserving) {
  // A variant should still resemble its seed under cDTW much more than an
  // unrelated seed does.
  TimeSeriesGeneratorParams params;
  params.num_seeds = 6;
  params.amplitude_noise = 0.02;
  TimeSeriesGenerator gen(params, 51);
  for (size_t fam = 0; fam < 4; ++fam) {
    Series v = gen.MakeVariant(fam);
    double to_own = ConstrainedDtw(v, gen.seed(fam), 0.15);
    double to_other = ConstrainedDtw(v, gen.seed(fam + 1), 0.15);
    EXPECT_LT(to_own, to_other) << "family " << fam;
  }
}

}  // namespace
}  // namespace qse
