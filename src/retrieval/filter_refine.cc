#include "src/retrieval/filter_refine.h"

#include "src/util/parallel.h"

namespace qse {

EmbeddedDatabase EmbedDatabase(const Embedder& embedder,
                               const DistanceOracle& oracle,
                               const std::vector<size_t>& db_ids,
                               size_t num_threads) {
  EmbeddedDatabase db(embedder.dims());
  db.Resize(db_ids.size());
  // Grain 2: one item costs up to 2d exact DX evaluations — for real
  // workloads (shape context, DTW) each is worth a thread on its own.
  ParallelForGrain(
      0, db_ids.size(), 2,
      [&](size_t i) {
        size_t self = db_ids[i];
        Vector row = embedder.Embed(
            [&](size_t other) {
              return self == other ? 0.0 : oracle.Distance(self, other);
            },
            nullptr);
        db.SetRow(i, row);
      },
      num_threads);
  return db;
}

}  // namespace qse
