#ifndef QSE_UTIL_LOGGING_H_
#define QSE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace qse {
namespace internal {

/// Terminates the process after printing `msg`; used by QSE_CHECK.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

/// Writes one timestamped log line to stderr.
void LogLine(const char* level, const std::string& msg);

/// Stream-style collector so call sites can write
/// QSE_LOG("built model: " << d << " dims").
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qse

/// Unconditional informational log line to stderr.
#define QSE_LOG(msg_expr)                                             \
  do {                                                                \
    ::qse::internal::MessageStream _qse_ms;                           \
    _qse_ms << msg_expr;                                              \
    ::qse::internal::LogLine("INFO", _qse_ms.str());                  \
  } while (0)

/// Fatal invariant check; always on (used for programming errors, not for
/// recoverable conditions — those return Status).
#define QSE_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::qse::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                 \
  } while (0)

#define QSE_CHECK_MSG(cond, msg_expr)                                 \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::qse::internal::MessageStream _qse_ms;                         \
      _qse_ms << msg_expr;                                            \
      ::qse::internal::CheckFailed(__FILE__, __LINE__, #cond,         \
                                   _qse_ms.str());                    \
    }                                                                 \
  } while (0)

#endif  // QSE_UTIL_LOGGING_H_
