#include "src/util/timer.h"

namespace qse {
namespace internal {

std::atomic<FakeClock*>& ClockOverrideSlot() {
  static std::atomic<FakeClock*> slot{nullptr};
  return slot;
}

}  // namespace internal
}  // namespace qse
