#ifndef QSE_MATCHING_SHAPE_CONTEXT_DISTANCE_H_
#define QSE_MATCHING_SHAPE_CONTEXT_DISTANCE_H_

#include "src/distance/point_set.h"
#include "src/matching/shape_context.h"

namespace qse {

/// Parameters of the Shape Context Distance.
struct ShapeContextDistanceParams {
  ShapeContextParams descriptor;
  /// Weight of the alignment-residual term relative to the matching term.
  /// The paper's distance [4] is "a weighted sum of three terms: the cost
  /// of matching shape context features, the cost of the alignment, and
  /// the intensity-level differences ..."; we keep the matching term and
  /// model the geometric terms with a similarity-alignment residual (see
  /// DESIGN.md substitution #4).
  double alignment_weight = 1.0;
};

/// Breakdown of the two terms, exposed for tests and diagnostics.
struct ShapeContextDistanceResult {
  double matching_cost = 0.0;   // Mean chi^2 cost of the optimal assignment.
  double alignment_cost = 0.0;  // RMS residual after similarity alignment.
  double total = 0.0;
};

/// Full Shape Context Distance between two 2D point sets:
///  1. compute per-point log-polar shape context descriptors,
///  2. chi-squared cost matrix + Hungarian optimal assignment,
///  3. least-squares similarity transform (rotation + scale + translation)
///     of a's points onto their matches in b; the RMS residual is the
///     alignment cost.
///
/// The result is symmetric only approximately and violates the triangle
/// inequality — a genuinely non-metric DX, as required by the paper's
/// experimental setting.  Requires both sets to have >= 2 points and
/// a.size() <= b.size() is NOT required (the smaller set is matched into
/// the larger one).
ShapeContextDistanceResult ShapeContextDistanceDetailed(
    const PointSet& a, const PointSet& b,
    const ShapeContextDistanceParams& params = {});

/// Convenience wrapper returning only the scalar distance.
double ShapeContextDistance(const PointSet& a, const PointSet& b,
                            const ShapeContextDistanceParams& params = {});

}  // namespace qse

#endif  // QSE_MATCHING_SHAPE_CONTEXT_DISTANCE_H_
