#include "src/retrieval/embedded_database.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

TEST(EmbeddedDatabaseTest, StartsEmpty) {
  EmbeddedDatabase db(4);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.dims(), 4u);
  EXPECT_TRUE(db.empty());
}

TEST(EmbeddedDatabaseTest, AppendStoresRowsContiguously) {
  EmbeddedDatabase db(3);
  EXPECT_EQ(db.Append({1, 2, 3}), 0u);
  EXPECT_EQ(db.Append({4, 5, 6}), 1u);
  EXPECT_EQ(db.size(), 2u);
  // One flat buffer, row-major.
  EXPECT_EQ(db.data(), (std::vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(db.row(1)[0], 4.0);
  EXPECT_EQ(db.row(1) - db.row(0), 3);  // Adjacent rows, no gaps.
}

TEST(EmbeddedDatabaseTest, FromRowsRoundTripsThroughRowVector) {
  std::vector<Vector> rows = {{0.5, -1}, {2, 3}, {4, 5}};
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  ASSERT_EQ(db.size(), 3u);
  ASSERT_EQ(db.dims(), 2u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), rows[i]);
  }
}

TEST(EmbeddedDatabaseTest, SetRowOverwritesInPlace) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 1}, {2, 2}});
  db.SetRow(0, {9, 8});
  EXPECT_EQ(db.RowVector(0), (Vector{9, 8}));
  EXPECT_EQ(db.RowVector(1), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveMiddleMovesLastRow) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 3u);  // Former last row now lives at slot 1.
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(1), (Vector{3, 3}));
  EXPECT_EQ(db.RowVector(2), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveLastMovesNothing) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 1u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.RowVector(0), (Vector{0, 0}));
}

TEST(EmbeddedDatabaseTest, ResizeZeroFillsNewRows) {
  EmbeddedDatabase db(2);
  db.Resize(3);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(2), (Vector{0, 0}));
  db.mutable_row(1)[0] = 7;
  EXPECT_EQ(db.RowVector(1), (Vector{7, 0}));
}

TEST(EmbeddedDatabaseTest, AppendBorrowedRowMayAliasOwnBuffer) {
  // Append(const double*) must survive a source pointing into this
  // database's own buffer even when the append forces a reallocation.
  EmbeddedDatabase db(2);
  db.Append({1, 2});
  for (int i = 0; i < 100; ++i) {
    size_t row = db.Append(db.row(db.size() - 1));
    EXPECT_EQ(row, static_cast<size_t>(i) + 1);
  }
  ASSERT_EQ(db.size(), 101u);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), (Vector{1, 2})) << i;
  }
}

TEST(EmbeddedDatabaseTest, ReserveOnDimensionlessDatabaseIsSafeNoOp) {
  // Regression: Reserve on a dims() == 0 database used to reserve zero
  // bytes and still walk the hugepage-advise path.  It must be a true
  // no-op: no allocation, and the database stays fully usable.
  EmbeddedDatabase db;
  ASSERT_EQ(db.dims(), 0u);
  db.Reserve(1u << 20);
  EXPECT_EQ(db.data().capacity(), 0u);
  EXPECT_TRUE(db.empty());
  // FromRows({}) funnels through the same path (dims 0, Reserve(0)).
  EmbeddedDatabase empty = EmbeddedDatabase::FromRows({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.dims(), 0u);
}

TEST(EmbeddedDatabaseTest, ReserveGrowsCapacityOnce) {
  EmbeddedDatabase db(3);
  db.Reserve(100);
  size_t cap = db.data().capacity();
  EXPECT_GE(cap, 300u);
  // A smaller (or equal) reservation must not touch the buffer again.
  db.Reserve(50);
  EXPECT_EQ(db.data().capacity(), cap);
  db.Append({1, 2, 3});
  EXPECT_EQ(db.RowVector(0), (Vector{1, 2, 3}));
}

TEST(EmbeddedDatabaseTest, AppendAfterResizeKeepsData) {
  EmbeddedDatabase db(2);
  db.Resize(1);
  db.SetRow(0, {1, 2});
  EXPECT_EQ(db.Append({3, 4}), 1u);
  EXPECT_EQ(db.data(), (std::vector<double>{1, 2, 3, 4}));
}

// --- Epoch snapshots: what pinned readers observe under mutation --------

TEST(EmbeddedDatabaseTest, SnapshotIsImmuneToAppend) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 1}, {2, 2}});
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  // Append enough to force a copy-on-write reallocation.
  for (int i = 0; i < 64; ++i) db.Append({9, 9});
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_EQ(snap->row(0)[0], 1.0);
  EXPECT_EQ(snap->row(1)[1], 2.0);
  EXPECT_EQ(db.size(), 66u);
  // A fresh snapshot sees the appended state.
  EXPECT_EQ(db.snapshot()->size(), 66u);
}

TEST(EmbeddedDatabaseTest, SnapshotIsImmuneToInteriorRemove) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  db.SwapRemove(1);  // Interior: swaps {3,3} into slot 1 via CoW.
  // The pinned reader still sees the pre-remove layout, untouched.
  ASSERT_EQ(snap->size(), 4u);
  EXPECT_EQ(snap->row(1)[0], 1.0);
  EXPECT_EQ(snap->row(3)[0], 3.0);
  // The current state has the swapped layout.
  EXPECT_EQ(db.RowVector(1), (Vector{3, 3}));
  EXPECT_EQ(db.size(), 3u);
}

TEST(EmbeddedDatabaseTest, SwapRemoveLastShortCircuitsWithoutCopy) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}});
  const double* before = db.snapshot()->data();
  size_t moved_from = db.SwapRemove(2);
  EXPECT_EQ(moved_from, 2u);  // Nothing moved.
  // Same buffer republished with a smaller count: the O(1) fast path,
  // not a copy-on-write (an interior remove would swap buffers).
  EXPECT_EQ(db.snapshot()->data(), before);
  EXPECT_EQ(db.size(), 2u);
  size_t interior = db.SwapRemove(0);
  EXPECT_EQ(interior, 1u);
  EXPECT_NE(db.snapshot()->data(), before);
  EXPECT_EQ(db.RowVector(0), (Vector{1, 1}));
}

TEST(EmbeddedDatabaseTest, VacatedLastSlotIsNotRewrittenUnderAPin) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}});
  db.Reserve(8);  // Plenty of capacity: only the pin forces the copy.
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  ASSERT_EQ(snap->size(), 2u);
  db.SwapRemove(1);      // O(1) shrink; slot 1 still pinned by `snap`.
  db.Append({7, 7}, 7);  // Would land in slot 1 — must copy instead.
  // The pinned reader's row 1 is intact...
  EXPECT_EQ(snap->row(1)[0], 1.0);
  EXPECT_EQ(snap->row(1)[1], 1.0);
  // ...and the new state has the fresh row.
  EXPECT_EQ(db.RowVector(1), (Vector{7, 7}));
  EXPECT_EQ(db.id_of(1), 7u);
}

TEST(EmbeddedDatabaseTest, IdColumnFollowsMutations) {
  EmbeddedDatabase db(1);
  db.Append({0.5}, 10);
  db.Append({1.5}, 11);
  db.Append({2.5}, 12);
  EXPECT_EQ(db.id_of(0), 10u);
  EXPECT_EQ(db.id_of(2), 12u);
  db.SwapRemove(0);  // id 12's row swaps into slot 0.
  EXPECT_EQ(db.id_of(0), 12u);
  EXPECT_EQ(db.id_of(1), 11u);
  EXPECT_EQ(db.ids(), (std::vector<size_t>{12, 11}));
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  EXPECT_EQ(snap->id_of(0), 12u);
  db.AssignIds({20, 21});
  EXPECT_EQ(db.id_of(0), 20u);
}

TEST(EmbeddedDatabaseTest, CopyIsDeepAndIndependent) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 2}, {3, 4}});
  db.AssignIds({5, 6});
  EmbeddedDatabase copy = db;
  db.SwapRemove(0);
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.RowVector(0), (Vector{1, 2}));
  EXPECT_EQ(copy.id_of(0), 5u);
  EXPECT_EQ(copy.id_of(1), 6u);
}

}  // namespace
}  // namespace qse
