#include "src/core/embedding1d.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/training_context.h"
#include "tests/test_util.h"

namespace qse {
namespace {

TEST(TrainingContextTest, MatricesMatchOracle) {
  auto oracle = test::MakePlaneOracle(20, 1);
  std::vector<size_t> cand = {0, 1, 2, 3};
  std::vector<size_t> train = {4, 5, 6, 7, 8, 9};
  TrainingContext ctx = TrainingContext::Build(oracle, cand, train);
  EXPECT_EQ(ctx.num_candidates(), 4u);
  EXPECT_EQ(ctx.num_train_objects(), 6u);
  EXPECT_DOUBLE_EQ(ctx.CandCand(0, 2), oracle.Distance(0, 2));
  EXPECT_DOUBLE_EQ(ctx.CandTrain(1, 3), oracle.Distance(1, 7));
  EXPECT_DOUBLE_EQ(ctx.TrainTrain(0, 5), oracle.Distance(4, 9));
}

TEST(TrainingContextTest, DiagonalIsZeroAndSymmetric) {
  auto oracle = test::MakePlaneOracle(10, 2);
  TrainingContext ctx =
      TrainingContext::Build(oracle, test::Iota(5), test::Iota(5, 5));
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(ctx.CandCand(i, i), 0.0);
    EXPECT_DOUBLE_EQ(ctx.TrainTrain(i, i), 0.0);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(ctx.CandCand(i, j), ctx.CandCand(j, i));
      EXPECT_DOUBLE_EQ(ctx.TrainTrain(i, j), ctx.TrainTrain(j, i));
    }
  }
}

TEST(TrainingContextTest, SharedObjectBetweenCandAndTrainIsZero) {
  auto oracle = test::MakePlaneOracle(10, 3);
  // Candidate 2 is also training object index 0 (same db id 2).
  TrainingContext ctx =
      TrainingContext::Build(oracle, {0, 1, 2}, {2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ctx.CandTrain(2, 0), 0.0);
}

TEST(TrainingContextTest, CandidateDbIdsPreserved) {
  auto oracle = test::MakePlaneOracle(10, 4);
  TrainingContext ctx =
      TrainingContext::Build(oracle, {7, 3, 9}, {0, 1, 2, 4});
  EXPECT_EQ(ctx.candidate_db_id(0), 7u);
  EXPECT_EQ(ctx.candidate_db_id(2), 9u);
}

TEST(PivotProjectionTest, CollinearPointsProjectExactly) {
  // On a line, the projection of x onto the segment (x1, x2) is the
  // signed distance from x1 — exactly Eq. 2 with the Pythagorean
  // interpretation of [12].
  double d12 = 10.0;
  // x at distance 3 from x1 (between the pivots): d1=3, d2=7.
  EXPECT_DOUBLE_EQ(PivotProjection(3, 7, d12), 3.0);
  // x beyond x2: d1=13, d2=3.
  EXPECT_DOUBLE_EQ(PivotProjection(13, 3, d12), 13.0);
  // x before x1: d1=2, d2=12.
  EXPECT_DOUBLE_EQ(PivotProjection(2, 12, d12), -2.0);
}

TEST(PivotProjectionTest, PivotsThemselvesProjectToEndpoints) {
  double d12 = 4.0;
  EXPECT_DOUBLE_EQ(PivotProjection(0, d12, d12), 0.0);
  EXPECT_DOUBLE_EQ(PivotProjection(d12, 0, d12), d12);
}

TEST(PivotProjectionTest, PlaneProjectionMatchesGeometry) {
  // In R^2 with Euclidean distance, Eq. 2 is the orthogonal projection
  // onto the pivot line.
  Vector x1 = {0, 0}, x2 = {4, 0}, x = {1, 2};
  double d1 = L2Distance(x, x1), d2 = L2Distance(x, x2);
  double proj = PivotProjection(d1, d2, 4.0);
  EXPECT_NEAR(proj, 1.0, 1e-12);  // x's first coordinate.
}

TEST(Embedding1DTest, ReferenceValueIsRowOfCandTrain) {
  auto oracle = test::MakePlaneOracle(12, 5);
  TrainingContext ctx =
      TrainingContext::Build(oracle, test::Iota(4), test::Iota(8, 4));
  Embedding1DSpec spec;
  spec.type = Embedding1DSpec::Type::kReference;
  spec.c1 = 2;
  for (size_t o = 0; o < 8; ++o) {
    EXPECT_DOUBLE_EQ(Eval1DOnTrainObject(spec, ctx, o), ctx.CandTrain(2, o));
  }
}

TEST(Embedding1DTest, PivotValueMatchesFormula) {
  auto oracle = test::MakePlaneOracle(12, 6);
  TrainingContext ctx =
      TrainingContext::Build(oracle, test::Iota(4), test::Iota(8, 4));
  Embedding1DSpec spec;
  spec.type = Embedding1DSpec::Type::kPivot;
  spec.c1 = 0;
  spec.c2 = 3;
  double d12 = ctx.CandCand(0, 3);
  for (size_t o = 0; o < 8; ++o) {
    double expected =
        PivotProjection(ctx.CandTrain(0, o), ctx.CandTrain(3, o), d12);
    EXPECT_NEAR(Eval1DOnTrainObject(spec, ctx, o), expected, 1e-12);
  }
}

TEST(Embedding1DTest, BatchEvalMatchesScalarEval) {
  auto oracle = test::MakePlaneOracle(16, 7);
  TrainingContext ctx =
      TrainingContext::Build(oracle, test::Iota(6), test::Iota(10, 6));
  for (auto type :
       {Embedding1DSpec::Type::kReference, Embedding1DSpec::Type::kPivot}) {
    Embedding1DSpec spec;
    spec.type = type;
    spec.c1 = 1;
    spec.c2 = 4;
    std::vector<double> batch(ctx.num_train_objects());
    Eval1DOnAllTrainObjects(spec, ctx, batch.data());
    for (size_t o = 0; o < batch.size(); ++o) {
      EXPECT_NEAR(batch[o], Eval1DOnTrainObject(spec, ctx, o), 1e-12);
    }
  }
}

TEST(Embedding1DTest, SpecEquality) {
  Embedding1DSpec a{Embedding1DSpec::Type::kReference, 1, 0};
  Embedding1DSpec b{Embedding1DSpec::Type::kReference, 1, 99};
  EXPECT_EQ(a, b);  // c2 ignored for reference type.
  Embedding1DSpec c{Embedding1DSpec::Type::kPivot, 1, 0};
  Embedding1DSpec d{Embedding1DSpec::Type::kPivot, 1, 99};
  EXPECT_FALSE(c == d);
}

}  // namespace
}  // namespace qse
