#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/data/digit_generator.h"
#include "src/obs/exposition.h"
#include "src/data/timeseries_generator.h"
#include "src/distance/dtw.h"
#include "src/matching/shape_context_distance.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace qse {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s (use --key=value)\n",
                   arg.c_str());
      std::exit(2);
    }
    size_t eq = arg.find('=');
    std::string key = arg.substr(2, eq == std::string::npos ? arg.npos
                                                            : eq - 2);
    std::string value = eq == std::string::npos ? "1" : arg.substr(eq + 1);
    kv_.emplace_back(key, value);
  }
}

size_t Flags::GetSize(const std::string& key, size_t def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return static_cast<size_t>(std::strtoull(v.c_str(),
                                                           nullptr, 10));
  }
  return def;
}

double Flags::GetDouble(const std::string& key, double def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  return def;
}

std::string Flags::GetString(const std::string& key, std::string def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return def;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v == "1" || v == "true";
  }
  return def;
}

void Workload::SaveCache() const {
  if (cache_path.empty()) return;
  Status s = oracle->Save(cache_path);
  if (!s.ok()) {
    QSE_LOG("warning: failed to save distance cache: " << s.ToString());
  } else {
    QSE_LOG("saved distance cache (" << oracle->cached_pairs() << " pairs) to "
                                     << cache_path);
  }
}

namespace {

std::string CacheDir() {
  std::filesystem::create_directories("bench_cache");
  return "bench_cache";
}

void AttachCache(Workload* w, const std::string& fingerprint) {
  w->oracle = std::make_unique<CachingOracle>(w->raw_oracle.get(),
                                              fingerprint);
  w->cache_path = CacheDir() + "/" + fingerprint + ".bin";
  Status s = w->oracle->Load(w->cache_path);
  if (s.ok()) {
    QSE_LOG("loaded distance cache with " << w->oracle->cached_pairs()
                                          << " pairs from " << w->cache_path);
  }
}

}  // namespace

Workload MakeDigitsWorkload(const WorkloadScale& scale) {
  Workload w;
  size_t total = scale.db_size + scale.num_queries;
  DigitGeneratorParams gen_params;
  DigitGenerator gen(gen_params, scale.seed);
  std::vector<PointSet> shapes;
  shapes.reserve(total);
  for (const LabeledPointSet& s : gen.Generate(total)) {
    shapes.push_back(s.shape);
  }
  ShapeContextDistanceParams sc_params;
  w.raw_oracle = std::make_unique<ObjectOracle<PointSet>>(
      std::move(shapes), [sc_params](const PointSet& a, const PointSet& b) {
        return ShapeContextDistance(a, b, sc_params);
      });
  for (size_t i = 0; i < scale.db_size; ++i) w.db_ids.push_back(i);
  for (size_t i = 0; i < scale.num_queries; ++i) {
    w.query_ids.push_back(scale.db_size + i);
  }
  std::ostringstream fp;
  fp << "digits-sc-n" << scale.db_size << "-q" << scale.num_queries << "-s"
     << scale.seed;
  w.name = fp.str();
  AttachCache(&w, w.name);
  return w;
}

Workload MakeTimeSeriesWorkload(const WorkloadScale& scale,
                                bool fixed_length) {
  Workload w;
  size_t total = scale.db_size + scale.num_queries;
  TimeSeriesGeneratorParams params;
  params.fixed_length = fixed_length;
  TimeSeriesGenerator gen(params, scale.seed);
  std::vector<Series> series = gen.Generate(total);
  w.raw_oracle = std::make_unique<ObjectOracle<Series>>(
      std::move(series), [](const Series& a, const Series& b) {
        return ConstrainedDtw(a, b, 0.1);
      });
  for (size_t i = 0; i < scale.db_size; ++i) w.db_ids.push_back(i);
  for (size_t i = 0; i < scale.num_queries; ++i) {
    w.query_ids.push_back(scale.db_size + i);
  }
  std::ostringstream fp;
  fp << "timeseries-cdtw-n" << scale.db_size << "-q" << scale.num_queries
     << "-s" << scale.seed << (fixed_length ? "-fixed" : "");
  w.name = fp.str();
  AttachCache(&w, w.name);
  return w;
}

std::vector<Series> MakeFixedLengthSeries(const WorkloadScale& scale,
                                          size_t count, uint64_t salt) {
  TimeSeriesGeneratorParams params;
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, scale.seed + salt);
  return gen.Generate(count);
}

std::vector<size_t> DoublingLadder(size_t max) {
  std::vector<size_t> ladder;
  for (size_t v = 1; v < max; v *= 2) ladder.push_back(v);
  ladder.push_back(max);
  return ladder;
}

GroundTruth ComputeWorkloadGroundTruth(const Workload& workload,
                                       size_t kmax) {
  Timer timer;
  GroundTruth gt = ComputeGroundTruth(*workload.oracle, workload.db_ids,
                                      workload.query_ids, kmax);
  QSE_LOG(workload.name << ": ground truth (" << workload.query_ids.size()
                        << " queries x " << workload.db_ids.size()
                        << " db) in " << timer.Seconds() << "s");
  return gt;
}

namespace {

/// Samples candidate/training ids deterministically from the database.
std::vector<size_t> SampleDbIds(const Workload& workload, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  count = std::min(count, workload.db_ids.size());
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(workload.db_ids.size(), count);
  std::vector<size_t> ids;
  ids.reserve(count);
  for (size_t p : picks) ids.push_back(workload.db_ids[p]);
  return ids;
}

MethodLadder EvaluateQseLadder(const Workload& workload,
                               const GroundTruth& gt, const std::string& name,
                               const QuerySensitiveEmbedding& model) {
  MethodLadder result;
  result.name = name;
  for (size_t j : DoublingLadder(model.num_rounds())) {
    QuerySensitiveEmbedding prefix = model.Prefix(j);
    QseEmbedderAdapter adapter(&prefix);
    QuerySensitiveScorer scorer(&prefix);
    EmbeddedDatabase db =
        EmbedDatabase(adapter, *workload.oracle, workload.db_ids);
    result.ladder.push_back(
        EvaluateLadderPoint(adapter, scorer, db, *workload.oracle,
                            workload.db_ids, workload.query_ids, gt, j));
  }
  return result;
}

}  // namespace

MethodLadder RunBoostMapVariant(const Workload& workload,
                                const GroundTruth& gt,
                                const std::string& name,
                                TripleSampling sampling, bool query_sensitive,
                                const TrainingScale& scale) {
  Timer timer;
  BoostMapConfig config;
  config.sampling = sampling;
  config.num_triples = scale.num_triples;
  config.k1 = scale.k1;
  config.sampling_seed = scale.seed + 13;
  config.boost.rounds = scale.rounds;
  config.boost.embeddings_per_round = scale.embeddings_per_round;
  config.boost.query_sensitive = query_sensitive;
  config.boost.seed = scale.seed + 29;

  std::vector<size_t> cand =
      SampleDbIds(workload, scale.num_cand, scale.seed + 1);
  std::vector<size_t> train =
      scale.num_cand == scale.num_train
          ? cand  // Paper: C and Xtr have equal size; share the sample.
          : SampleDbIds(workload, scale.num_train, scale.seed + 2);

  auto artifacts = TrainBoostMap(*workload.oracle, cand, train, config);
  QSE_CHECK_MSG(artifacts.ok(), artifacts.status().ToString());
  QSE_LOG(workload.name << ": trained " << name << " ("
                        << artifacts->model.num_rounds() << " rounds, "
                        << artifacts->model.dims() << " dims, train_err "
                        << artifacts->final_training_error << ") in "
                        << timer.Seconds() << "s");
  MethodLadder ladder = EvaluateQseLadder(workload, gt, name,
                                          artifacts->model);
  QSE_LOG(workload.name << ": evaluated " << name << " ladder in "
                        << timer.Seconds() << "s total");
  return ladder;
}

MethodLadder RunFastMap(const Workload& workload, const GroundTruth& gt,
                        size_t dims, const TrainingScale& scale) {
  Timer timer;
  FastMapOptions options;
  options.dims = dims;
  options.seed = scale.seed + 3;
  // The paper constructs FastMap "on a subset of the database" sized like
  // the BoostMap candidate sample budget (scaled).
  std::vector<size_t> sample = SampleDbIds(
      workload, std::max<size_t>(scale.num_cand, 2 * dims), scale.seed + 4);
  FastMapModel model = BuildFastMap(*workload.oracle, sample, options);
  QSE_LOG(workload.name << ": built FastMap with " << model.dims()
                        << " dims in " << timer.Seconds() << "s");
  MethodLadder result;
  result.name = "FastMap";
  L2Scorer scorer;
  for (size_t d : DoublingLadder(model.dims())) {
    FastMapModel prefix = model.Prefix(d);
    EmbeddedDatabase db =
        EmbedDatabase(prefix, *workload.oracle, workload.db_ids);
    result.ladder.push_back(
        EvaluateLadderPoint(prefix, scorer, db, *workload.oracle,
                            workload.db_ids, workload.query_ids, gt, d));
  }
  QSE_LOG(workload.name << ": evaluated FastMap ladder in "
                        << timer.Seconds() << "s total");
  return result;
}

namespace {

/// Writes `content` to `path` whole; shared by the metric exporters.
Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << content;
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace

Status WriteMetricsJson(const std::string& path,
                        const obs::MetricRegistry& registry) {
  return WriteTextFile(path, obs::MetricsJson(registry));
}

Status WriteMetricsPrometheus(const std::string& path,
                              const obs::MetricRegistry& registry) {
  return WriteTextFile(path, obs::PrometheusText(registry));
}

std::string ResultsPath(const std::string& stem) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + stem + ".csv";
}

LatencyPercentiles ComputeLatencyPercentiles(std::vector<double> latencies) {
  LatencyPercentiles p;
  if (latencies.empty()) return p;
  // One sort, three nearest-rank reads (same definition as
  // QuantileNearestRank: smallest v with >= ceil(q * n) samples <= v).
  std::sort(latencies.begin(), latencies.end());
  auto rank = [&](double q) {
    size_t r = static_cast<size_t>(std::ceil(q * latencies.size()));
    return latencies[std::max<size_t>(r, 1) - 1];
  };
  p.p50 = rank(0.50);
  p.p95 = rank(0.95);
  p.p99 = rank(0.99);
  return p;
}

void BenchJsonEntry::AddPercentiles(const LatencyPercentiles& p) {
  extras.emplace_back("p50", p.p50);
  extras.emplace_back("p95", p.p95);
  extras.emplace_back("p99", p.p99);
}

Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchJsonEntry>& entries) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    out << "    {\n"
        << "      \"name\": \"" << e.name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"real_time\": " << std::setprecision(17) << e.real_time_ns
        << ",\n      \"time_unit\": \"ns\"";
    for (const auto& [key, value] : e.extras) {
      out << ",\n      \"" << key << "\": " << value;
    }
    out << "\n    }" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

void WriteSeriesCsv(const std::string& stem,
                    const std::vector<MethodLadder>& methods, size_t kmax,
                    double accuracy, size_t db_size) {
  std::vector<std::string> header = {"k"};
  for (const MethodLadder& m : methods) header.push_back(m.name);
  Table table(header);
  for (size_t k = 1; k <= kmax; ++k) {
    std::vector<std::string> row = {Table::Fmt(k)};
    for (const MethodLadder& m : methods) {
      row.push_back(Table::Fmt(OptimalCost(m.ladder, k, accuracy, db_size)));
    }
    table.AddRow(std::move(row));
  }
  Status s = table.WriteCsv(ResultsPath(stem));
  if (!s.ok()) QSE_LOG("warning: " << s.ToString());
}

std::vector<MethodLadder> RunAccuracyFigure(
    const Workload& workload, const TrainingScale& scale,
    const std::string& stem, const std::vector<double>& accuracies,
    const std::vector<size_t>& print_ks, size_t kmax, bool include_ra_qs) {
  GroundTruth gt = ComputeWorkloadGroundTruth(workload, kmax);
  workload.SaveCache();  // Persist the expensive ground-truth distances.

  std::vector<MethodLadder> methods;
  methods.push_back(RunFastMap(workload, gt, scale.rounds, scale));
  methods.push_back(RunBoostMapVariant(workload, gt, "Ra-QI",
                                       TripleSampling::kRandom, false,
                                       scale));
  if (include_ra_qs) {
    methods.push_back(RunBoostMapVariant(workload, gt, "Ra-QS",
                                         TripleSampling::kRandom, true,
                                         scale));
  }
  methods.push_back(RunBoostMapVariant(workload, gt, "Se-QI",
                                       TripleSampling::kSelective, false,
                                       scale));
  methods.push_back(RunBoostMapVariant(workload, gt, "Se-QS",
                                       TripleSampling::kSelective, true,
                                       scale));
  workload.SaveCache();

  std::vector<size_t> print_ks_clamped;
  for (size_t k : print_ks) {
    if (k <= kmax) print_ks_clamped.push_back(k);
  }
  for (double accuracy : accuracies) {
    std::ostringstream panel;
    panel << stem << "_acc" << static_cast<int>(accuracy * 100);
    ReportAccuracyTable(
        workload.name + " — exact distances per query for " +
            std::to_string(static_cast<int>(accuracy * 100)) + "% accuracy",
        panel.str(), methods, print_ks_clamped, accuracy,
        workload.db_ids.size());
    WriteSeriesCsv(panel.str() + "_series", methods, kmax, accuracy,
                   workload.db_ids.size());
  }
  return methods;
}

void ReportAccuracyTable(const std::string& title, const std::string& stem,
                         const std::vector<MethodLadder>& methods,
                         const std::vector<size_t>& ks, double accuracy,
                         size_t db_size) {
  std::vector<std::string> header = {"k"};
  for (const MethodLadder& m : methods) header.push_back(m.name);
  Table table(header);
  for (size_t k : ks) {
    std::vector<std::string> row = {Table::Fmt(k)};
    for (const MethodLadder& m : methods) {
      row.push_back(Table::Fmt(OptimalCost(m.ladder, k, accuracy, db_size)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n%s (accuracy %.0f%%, brute force = %zu distances)\n%s",
              title.c_str(), accuracy * 100.0, db_size,
              table.ToPretty().c_str());
  Status s = table.WriteCsv(ResultsPath(stem));
  if (!s.ok()) QSE_LOG("warning: " << s.ToString());
}

}  // namespace bench
}  // namespace qse
