// Corruption fuzzing for the on-disk formats: truncated tails, single
// bit flips, duplicated records and lying length prefixes for the WAL;
// bit flips and truncation for the snapshot.  The recovery contract
// under attack: the readers never crash and never fabricate data — a
// corrupted WAL always parses to an EXACT PREFIX of the records actually
// written (repair truncates to it, strict mode refuses), and a corrupted
// snapshot always fails kDataLoss rather than restoring wrong rows.
//
// Everything is deterministic (fixed seeds, fixed sampling strides), so
// a failure reproduces exactly.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/persist/durability.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/util/logging.h"
#include "tests/line_universe.h"

namespace qse {
namespace persist {
namespace {

using test::kLineDims;
using test::LineEmbedder;
using test::XOf;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/wal.qse").c_str());
  std::remove((dir + "/snapshot.qse").c_str());
  std::remove((dir + "/snapshot.qse.tmp").c_str());
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A reference WAL: inserts and interleaved removes over the line
/// universe, written once per suite.
struct ReferenceWal {
  std::string bytes;               // The clean file.
  std::vector<WalRecord> records;  // What it holds, in order.
};

ReferenceWal BuildReferenceWal(const std::string& dir, size_t num_records) {
  const std::string path = dir + "/wal.qse";
  {
    StatusOr<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(path, FsyncPolicy::kOff, 0, 0, 0, 1);
    QSE_CHECK(writer.ok());
    for (size_t i = 0; i < num_records; ++i) {
      WalRecord record;
      if (i % 4 == 3) {
        record.op = WalOp::kRemove;
        record.db_id = i - 3;
      } else {
        record.op = WalOp::kInsert;
        record.db_id = i;
        record.row = std::vector<double>(kLineDims, XOf(i));
      }
      QSE_CHECK(writer.value()->Append(&record).ok());
    }
  }
  ReferenceWal ref;
  ref.bytes = ReadFile(path);
  StatusOr<WalReadResult> clean = ReadWal(path);
  QSE_CHECK(clean.ok() && clean.value().dropped_bytes == 0);
  ref.records = std::move(clean.value().records);
  QSE_CHECK(ref.records.size() == num_records);
  return ref;
}

bool RecordsEqual(const WalRecord& a, const WalRecord& b) {
  return a.op == b.op && a.seq == b.seq && a.db_id == b.db_id &&
         a.row.size() == b.row.size() &&
         (a.row.empty() ||
          std::memcmp(a.row.data(), b.row.data(),
                      a.row.size() * sizeof(double)) == 0);
}

/// The core prefix property: whatever the corruption, the parsed records
/// are an exact prefix of what was written.
void ExpectExactPrefix(const WalReadResult& got,
                       const std::vector<WalRecord>& originals,
                       const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_LE(got.records.size(), originals.size());
  for (size_t i = 0; i < got.records.size(); ++i) {
    ASSERT_TRUE(RecordsEqual(originals[i], got.records[i]))
        << "record " << i << " differs from what was written";
  }
}

/// The set of live ids after applying `records` in order.
std::set<size_t> LiveIdsAfter(const std::vector<WalRecord>& records,
                              size_t count) {
  std::set<size_t> live;
  for (size_t i = 0; i < count; ++i) {
    if (records[i].op == WalOp::kInsert) {
      live.insert(records[i].db_id);
    } else {
      live.erase(records[i].db_id);
    }
  }
  return live;
}

/// Opens + recovers a (possibly corrupt) durability dir in repair mode
/// and asserts the recovered database equals the serial replay of the
/// valid prefix.
void ExpectRepairedRecoveryMatchesPrefix(
    const std::string& dir, const std::vector<WalRecord>& originals,
    const std::string& what) {
  SCOPED_TRACE(what);
  DurabilityOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kOff;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok()) << manager.status();

  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db(kLineDims);
  RetrievalEngine engine(&embedder, &scorer, &db, {});
  StatusOr<uint64_t> replayed = manager.value()->Replay(&engine);
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  const std::set<size_t> expected =
      LiveIdsAfter(originals, static_cast<size_t>(replayed.value()));
  std::vector<size_t> ids = db.ids();
  std::set<size_t> got(ids.begin(), ids.end());
  EXPECT_EQ(expected, got);
}

constexpr size_t kRefRecords = 24;

TEST(WalFuzz, TruncatedTails) {
  const std::string dir = FreshDir("wal_fuzz_trunc");
  const ReferenceWal ref = BuildReferenceWal(dir, kRefRecords);

  std::vector<size_t> cuts;
  for (size_t cut = 0; cut < ref.bytes.size(); cut += 13) cuts.push_back(cut);
  cuts.push_back(ref.bytes.size() - 1);
  for (size_t cut : cuts) {
    const std::string what = "truncated to " + std::to_string(cut);
    WriteFile(dir + "/wal.qse", ref.bytes.substr(0, cut));
    StatusOr<WalReadResult> result = ReadWal(dir + "/wal.qse");
    if (cut > 0 && cut < kWalFileHeaderBytes) {
      // A torn header leaves no valid prefix to repair to.
      EXPECT_FALSE(result.ok()) << what;
      EXPECT_EQ(StatusCode::kDataLoss, result.status().code()) << what;
      continue;
    }
    ASSERT_TRUE(result.ok()) << what << ": " << result.status();
    ExpectExactPrefix(result.value(), ref.records, what);
    EXPECT_LE(result->valid_bytes, cut) << what;
    EXPECT_EQ(cut == 0 ? 0 : cut - result->valid_bytes,
              result->dropped_bytes)
        << what;
    if (result->dropped_bytes > 0) {
      EXPECT_FALSE(result->tail_status.ok()) << what;
    }
    ExpectRepairedRecoveryMatchesPrefix(dir, ref.records, what);
  }
}

TEST(WalFuzz, SingleBitFlips) {
  const std::string dir = FreshDir("wal_fuzz_flip");
  const ReferenceWal ref = BuildReferenceWal(dir, kRefRecords);

  for (size_t pos = 0; pos < ref.bytes.size(); pos += 7) {
    const size_t bit = pos % 8;
    const std::string what = "bit " + std::to_string(bit) + " at byte " +
                             std::to_string(pos);
    std::string corrupt = ref.bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << bit));
    WriteFile(dir + "/wal.qse", corrupt);
    StatusOr<WalReadResult> result = ReadWal(dir + "/wal.qse");
    if (!result.ok()) {
      // Only a broken header may reject the whole file.
      EXPECT_LT(pos, kWalFileHeaderBytes) << what;
      EXPECT_EQ(StatusCode::kDataLoss, result.status().code()) << what;
      DurabilityOptions opts;
      opts.dir = dir;
      EXPECT_FALSE(DurabilityManager::Open(opts).ok()) << what;
      continue;
    }
    ExpectExactPrefix(result.value(), ref.records, what);
    EXPECT_LE(result->valid_bytes, ref.bytes.size()) << what;

    // Strict mode must refuse anything repair would have to drop — check
    // BEFORE the repair-mode recovery below truncates the tail on disk.
    if (result->dropped_bytes > 0) {
      DurabilityOptions strict;
      strict.dir = dir;
      strict.repair_wal = false;
      StatusOr<std::unique_ptr<DurabilityManager>> rejected =
          DurabilityManager::Open(strict);
      ASSERT_FALSE(rejected.ok()) << what;
      EXPECT_EQ(StatusCode::kDataLoss, rejected.status().code()) << what;
    }
    ExpectRepairedRecoveryMatchesPrefix(dir, ref.records, what);
  }
}

TEST(WalFuzz, DuplicatedRecordIsParsedButNotReplayed) {
  const std::string dir = FreshDir("wal_fuzz_dup");
  const ReferenceWal ref = BuildReferenceWal(dir, kRefRecords);

  // Byte range of record 5: walk the frames.
  size_t offset = kWalFileHeaderBytes;
  for (size_t i = 0; i < 5; ++i) {
    uint32_t len;
    std::memcpy(&len, ref.bytes.data() + offset + 4, sizeof(len));
    offset += kWalRecordHeaderBytes + len;
  }
  uint32_t len;
  std::memcpy(&len, ref.bytes.data() + offset + 4, sizeof(len));
  const std::string dup =
      ref.bytes.substr(offset, kWalRecordHeaderBytes + len);

  WriteFile(dir + "/wal.qse", ref.bytes + dup);
  StatusOr<WalReadResult> result = ReadWal(dir + "/wal.qse");
  ASSERT_TRUE(result.ok()) << result.status();
  // Byte-level: the duplicate is a perfectly valid frame.
  ASSERT_EQ(kRefRecords + 1, result->records.size());
  EXPECT_EQ(0u, result->dropped_bytes);
  EXPECT_EQ(result->records[5].seq, result->records.back().seq);

  // Replay-level: sequence hygiene skips it, and the writer resumes
  // after the true maximum, not after the stale trailing seq.
  DurabilityOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kOff;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  EXPECT_EQ(kRefRecords, manager.value()->last_seq());

  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db(kLineDims);
  RetrievalEngine engine(&embedder, &scorer, &db, {});
  StatusOr<uint64_t> replayed = manager.value()->Replay(&engine);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(kRefRecords, replayed.value());
  std::vector<size_t> ids = db.ids();
  EXPECT_EQ(LiveIdsAfter(ref.records, kRefRecords),
            std::set<size_t>(ids.begin(), ids.end()));
}

TEST(WalFuzz, LyingLengthPrefixes) {
  const std::string dir = FreshDir("wal_fuzz_len");
  const ReferenceWal ref = BuildReferenceWal(dir, kRefRecords);

  // Patch record 3's length field three ways.
  size_t offset = kWalFileHeaderBytes;
  for (size_t i = 0; i < 3; ++i) {
    uint32_t len;
    std::memcpy(&len, ref.bytes.data() + offset + 4, sizeof(len));
    offset += kWalRecordHeaderBytes + len;
  }
  struct Lie {
    uint32_t value;
    const char* name;
  };
  const Lie lies[] = {
      {kMaxWalRecordBytes + 1, "implausibly huge"},
      {static_cast<uint32_t>(ref.bytes.size()), "larger than remaining"},
      {4, "smaller than actual"},
  };
  for (const Lie& lie : lies) {
    SCOPED_TRACE(lie.name);
    std::string corrupt = ref.bytes;
    std::memcpy(&corrupt[offset + 4], &lie.value, sizeof(lie.value));
    WriteFile(dir + "/wal.qse", corrupt);
    StatusOr<WalReadResult> result = ReadWal(dir + "/wal.qse");
    ASSERT_TRUE(result.ok()) << result.status();
    // The lie ends the valid prefix at record 3, every time.
    ASSERT_EQ(3u, result->records.size());
    ExpectExactPrefix(result.value(), ref.records, lie.name);
    EXPECT_GT(result->dropped_bytes, 0u);
    EXPECT_FALSE(result->tail_status.ok());
    ExpectRepairedRecoveryMatchesPrefix(dir, ref.records, lie.name);
  }
}

// --- snapshot corruption -------------------------------------------------

std::string BuildReferenceSnapshot(const std::string& path) {
  EmbeddedDatabase db(kLineDims);
  for (size_t id = 0; id < 10; ++id) {
    db.Append(Vector(kLineDims, XOf(id)), id);
  }
  EmbeddedDatabase::Snapshot pin = db.snapshot();
  const std::string bytes = EncodeSnapshot(10, "model-blob", {pin.view()});
  QSE_CHECK(WriteSnapshotFile(path, bytes).ok());
  return bytes;
}

TEST(SnapshotFuzz, BitFlipsAlwaysFailDataLossNeverCrash) {
  const std::string dir = FreshDir("snapshot_fuzz_flip");
  const std::string path = dir + "/snapshot.qse";
  const std::string clean = BuildReferenceSnapshot(path);

  for (size_t pos = 0; pos < clean.size(); pos += 5) {
    const std::string what = "flip at byte " + std::to_string(pos);
    std::string corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << (pos % 8)));
    WriteFile(path, corrupt);
    StatusOr<SnapshotContents> result = ReadSnapshotFile(path);
    ASSERT_FALSE(result.ok()) << what << ": a flipped snapshot decoded";
    EXPECT_EQ(StatusCode::kDataLoss, result.status().code()) << what;

    // And the manager refuses to come up rather than serving wrong rows.
    DurabilityOptions opts;
    opts.dir = dir;
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_FALSE(manager.ok()) << what;
    EXPECT_EQ(StatusCode::kDataLoss, manager.status().code()) << what;
  }
}

TEST(SnapshotFuzz, TruncationsAlwaysFailDataLossNeverCrash) {
  const std::string dir = FreshDir("snapshot_fuzz_trunc");
  const std::string path = dir + "/snapshot.qse";
  const std::string clean = BuildReferenceSnapshot(path);

  for (size_t cut = 0; cut < clean.size(); cut += 9) {
    const std::string what = "truncated to " + std::to_string(cut);
    WriteFile(path, clean.substr(0, cut));
    StatusOr<SnapshotContents> result = ReadSnapshotFile(path);
    ASSERT_FALSE(result.ok()) << what;
    EXPECT_EQ(StatusCode::kDataLoss, result.status().code()) << what;
  }
}

TEST(SnapshotFuzz, TrailingGarbageFailsDataLoss) {
  const std::string dir = FreshDir("snapshot_fuzz_trailing");
  const std::string path = dir + "/snapshot.qse";
  const std::string clean = BuildReferenceSnapshot(path);
  WriteFile(path, clean + "extra");
  StatusOr<SnapshotContents> result = ReadSnapshotFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kDataLoss, result.status().code());
}

}  // namespace
}  // namespace persist
}  // namespace qse
