// Handwritten-digit similarity search — the paper's first workload
// (Sec. 9, MNIST + Shape Context Distance), on this repo's synthetic
// digit generator.
//
// Demonstrates:
//   * the Shape Context Distance over stroke-sampled digit point sets,
//   * Se-QS training and filter-and-refine retrieval,
//   * a 1-NN classifier on top of retrieval (the paper quotes 0.63% error
//     for 3-NN shape context matching on real MNIST; our synthetic digits
//     are easier, so expect a high accuracy from far fewer distances).
//
// Build: cmake --build build && ./build/examples/digits_retrieval
#include <cstdio>
#include <numeric>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/data/digit_generator.h"
#include "src/matching/shape_context_distance.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/filter_refine.h"

int main() {
  using namespace qse;

  // --- Generate the database (labeled synthetic digits).
  const size_t kDbSize = 600, kNumQueries = 60;
  DigitGenerator gen({}, /*seed=*/2005);
  std::vector<LabeledPointSet> samples = gen.Generate(kDbSize + kNumQueries);
  std::vector<PointSet> shapes;
  std::vector<int> labels;
  for (auto& s : samples) {
    shapes.push_back(std::move(s.shape));
    labels.push_back(s.label);
  }
  ObjectOracle<PointSet> oracle(
      std::move(shapes),
      [](const PointSet& a, const PointSet& b) {
        return ShapeContextDistance(a, b);
      });

  std::vector<size_t> db_ids(kDbSize);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  // --- Train Se-QS.
  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 4000;
  config.k1 = 5;
  config.boost.rounds = 40;
  config.boost.embeddings_per_round = 32;
  config.boost.query_sensitive = true;
  std::vector<size_t> training_sample(db_ids.begin(), db_ids.begin() + 150);
  auto artifacts = TrainBoostMap(oracle, training_sample, training_sample,
                                 config);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  std::printf("Se-QS model: %zu dims, query embedding costs %zu exact "
              "shape-context distances\n\n",
              artifacts->model.dims(), artifacts->model.EmbeddingCost());

  QseEmbedderAdapter embedder(&artifacts->model);
  EmbeddedDatabase embedded = EmbedDatabase(embedder, oracle, db_ids);
  QuerySensitiveScorer scorer(&artifacts->model);
  RetrievalEngine retriever(&embedder, &scorer, &embedded, db_ids);

  // --- Show one query and its retrieved neighbors as ASCII art.
  size_t demo_query = kDbSize;  // First query object.
  auto demo_dx = [&](size_t id) { return oracle.Distance(demo_query, id); };
  auto demo_or = retriever.Retrieve({demo_dx, RetrievalOptions(3, 40)});
  if (!demo_or.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 demo_or.status().ToString().c_str());
    return 1;
  }
  RetrievalResponse demo = std::move(demo_or).value();
  std::printf("query digit (true label %d):\n", labels[demo_query]);
  for (const auto& row : RenderAscii(oracle.object(demo_query), 24, 12)) {
    std::printf("  %s\n", row.c_str());
  }
  std::printf("\ntop-3 matches (labels:");
  for (const auto& nb : demo.neighbors) {
    std::printf(" %d", labels[db_ids[nb.index]]);
  }
  std::printf(") using %zu exact distances instead of %zu:\n",
              demo.exact_distances, kDbSize);
  for (const auto& nb : demo.neighbors) {
    std::printf("\n  match at distance %.3f:\n", nb.score);
    for (const auto& row : RenderAscii(oracle.object(db_ids[nb.index]),
                                       24, 12)) {
      std::printf("  %s\n", row.c_str());
    }
  }

  // --- 1-NN classification over all queries via filter-and-refine.
  // Classify all queries in one thread-parallel batch.
  std::vector<DxToDatabaseFn> queries;
  for (size_t q = kDbSize; q < kDbSize + kNumQueries; ++q) {
    queries.push_back([&oracle, q](size_t id) {
      return oracle.Distance(q, id);
    });
  }
  auto batch_or = retriever.RetrieveBatch(queries, RetrievalOptions(1, 40));
  if (!batch_or.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 batch_or.status().ToString().c_str());
    return 1;
  }
  size_t correct = 0, total_cost = 0;
  std::vector<RetrievalResponse> results = std::move(batch_or).value();
  for (size_t qi = 0; qi < results.size(); ++qi) {
    const RetrievalResponse& r = results[qi];
    total_cost += r.exact_distances;
    if (labels[db_ids[r.neighbors[0].index]] == labels[kDbSize + qi]) {
      ++correct;
    }
  }
  std::printf("\n1-NN classification: %zu/%zu correct (%.1f%%), avg %zu "
              "exact distances per query (brute force: %zu)\n",
              correct, kNumQueries,
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(kNumQueries),
              total_cost / kNumQueries, kDbSize);
  return 0;
}
