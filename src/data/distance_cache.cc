#include "src/data/distance_cache.h"

#include <fstream>

#include "src/util/serialize.h"

namespace qse {

namespace {
constexpr uint32_t kCacheMagic = 0x51534543;  // "QSEC"
}  // namespace

double CachingOracle::Distance(size_t i, size_t j) const {
  uint64_t key = Key(i, j);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Evaluate outside the lock so concurrent misses don't serialize on one
  // expensive DX; two threads racing on the same pair just recompute it.
  double d = inner_->Distance(i, j);
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(key, d);
  return d;
}

Status CachingOracle::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  std::lock_guard<std::mutex> lock(mu_);
  BinaryWriter w(&out);
  w.WriteU32(kCacheMagic);
  w.WriteString(fingerprint_);
  w.WriteU64(size());
  w.WriteU64(cache_.size());
  for (const auto& [key, value] : cache_) {
    w.WriteU64(key);
    w.WriteDouble(value);
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status CachingOracle::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cache file not found: " + path);
  BinaryReader r(&in);
  uint32_t magic = 0;
  QSE_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kCacheMagic) {
    return Status::IOError("bad magic in cache file: " + path);
  }
  std::string fingerprint;
  QSE_RETURN_IF_ERROR(r.ReadString(&fingerprint));
  if (fingerprint != fingerprint_) {
    return Status::FailedPrecondition(
        "cache fingerprint mismatch: file has '" + fingerprint +
        "', oracle expects '" + fingerprint_ + "'");
  }
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&n));
  if (n != size()) {
    return Status::FailedPrecondition("cache universe size mismatch");
  }
  uint64_t pairs = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&pairs));
  std::lock_guard<std::mutex> lock(mu_);
  cache_.reserve(cache_.size() + pairs);
  for (uint64_t k = 0; k < pairs; ++k) {
    uint64_t key = 0;
    double value = 0.0;
    QSE_RETURN_IF_ERROR(r.ReadU64(&key));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&value));
    cache_[key] = value;
  }
  return Status::OK();
}

}  // namespace qse
