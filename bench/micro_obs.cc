// Microbenchmarks for the observability hot paths: the striped counter
// Add, the histogram Record (binary search + striped fetch_add + packed
// double CAS), and the cost of one trace span — both the null-trace
// branch an untraced request pays at every span site and the real
// record a sampled request pays.  The metric paths sit inside the
// per-request (and in FilterScorer's case, per-scan) serving loop, so
// the acceptance bar is single-digit-to-low-double-digit nanoseconds.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/obs/metric_registry.h"
#include "src/obs/trace.h"

namespace qse {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_CounterAdd)->ThreadRange(1, 8);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge gauge;
  int64_t v = 0;
  for (auto _ : state) {
    gauge.Set(v++);
  }
  benchmark::DoNotOptimize(gauge.Value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram histogram(obs::DefaultLatencyBoundariesNs());
  double value = 1.0;
  for (auto _ : state) {
    histogram.Record(value);
    value = value < 4.0e9 ? value * 1.7 : 1.0;  // Sweep the buckets.
  }
  benchmark::DoNotOptimize(histogram.Snapshot().count);
}
BENCHMARK(BM_HistogramRecord)->ThreadRange(1, 8);

void BM_HistogramSnapshot(benchmark::State& state) {
  obs::Histogram histogram(obs::DefaultLatencyBoundariesNs());
  for (int i = 0; i < 1000; ++i) histogram.Record(static_cast<double>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Snapshot());
  }
}
BENCHMARK(BM_HistogramSnapshot);

void BM_TraceSpanNullTrace(benchmark::State& state) {
  // The untraced fast path: what every un-sampled request pays at each
  // span site — one branch.
  for (auto _ : state) {
    uint64_t start = obs::TraceNowNs(nullptr);
    benchmark::DoNotOptimize(start);
    obs::TraceMark(nullptr, "stage", start);
  }
}
BENCHMARK(BM_TraceSpanNullTrace);

void BM_TraceSpanRecorded(benchmark::State& state) {
  // The sampled path: clock read + lock + vector push per span.  A real
  // request records tens of spans, not millions — recycle the trace
  // periodically so the measurement is the record cost, not the memory
  // growth of one absurdly deep trace.
  auto trace = std::make_unique<obs::RequestTrace>();
  size_t recorded = 0;
  for (auto _ : state) {
    uint64_t start = obs::TraceNowNs(trace.get());
    obs::TraceMark(trace.get(), "stage", start,
                   {obs::TraceArg{"rows", 1024, nullptr}});
    if (++recorded % 4096 == 0) {
      state.PauseTiming();
      trace = std::make_unique<obs::RequestTrace>();
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(trace->spans().size());
}
BENCHMARK(BM_TraceSpanRecorded);

}  // namespace
}  // namespace qse

BENCHMARK_MAIN();
