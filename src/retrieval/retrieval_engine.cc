#include "src/retrieval/retrieval_engine.h"

#include <algorithm>

#include "src/distance/simd/dispatch.h"
#include "src/obs/quality_monitor.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace qse {
namespace {

/// Nanoseconds elapsed since `start` (histogram-record helper).
double NsSince(MonotonicClock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count());
}

}  // namespace

RetrievalEngine::RetrievalEngine(const Embedder* embedder,
                                 const FilterScorer* scorer,
                                 EmbeddedDatabase* db,
                                 std::vector<size_t> db_ids)
    : embedder_(embedder),
      scorer_(scorer),
      db_(db),
      retrievals_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_engine_retrievals_total")),
      exact_distances_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_engine_exact_distances_total")),
      filter_rows_visited_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_engine_filter_rows_visited_total")),
      filter_rows_pruned_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_engine_filter_rows_pruned_total")),
      embed_ns_(obs::MetricRegistry::Global().GetHistogram(
          "qse_engine_embed_latency_ns", obs::DefaultLatencyBoundariesNs())),
      filter_ns_(obs::MetricRegistry::Global().GetHistogram(
          "qse_engine_filter_latency_ns", obs::DefaultLatencyBoundariesNs())),
      refine_ns_(obs::MetricRegistry::Global().GetHistogram(
          "qse_engine_refine_latency_ns", obs::DefaultLatencyBoundariesNs())) {
  QSE_CHECK(db_->size() == db_ids.size());
  db_->AssignIds(db_ids);
  row_of_.reserve(db_ids.size());
  for (size_t row = 0; row < db_ids.size(); ++row) {
    bool inserted = row_of_.emplace(db_ids[row], row).second;
    QSE_CHECK_MSG(inserted, "duplicate database id " << db_ids[row]);
  }
}

StatusOr<RetrievalResponse> RetrievalEngine::Retrieve(
    const RetrievalRequest& request) const {
  StatusOr<RetrievalResponse> result =
      RetrieveOne(request.dx, request.options, request.trace);
  if (result.ok()) result.value().trace = request.trace;
  return result;
}

StatusOr<RetrievalResponse> RetrievalEngine::RetrieveOne(
    const DxToDatabaseFn& dx, const RetrievalOptions& options,
    const std::shared_ptr<obs::RequestTrace>& trace_ptr) const {
  obs::RequestTrace* trace = trace_ptr.get();
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  // Fast-fail on an empty database before spending embedding distances
  // on `dx` (cheap atomic peek; the pinned snapshot below re-checks
  // authoritatively under concurrent mutation).
  if (db_->empty()) {
    return Status::FailedPrecondition("embedded database is empty");
  }

  RetrievalResponse response;
  // Embedding step: before the snapshot pin — it only talks to `dx`,
  // and shorter pins let mutations reclaim retired versions sooner.
  size_t embed_cost = 0;
  uint64_t span_start = obs::TraceNowNs(trace);
  MonotonicClock::time_point stage_start = MonotonicClock::now();
  Vector fq = embedder_->Embed(dx, &embed_cost);
  embed_ns_->Record(NsSince(stage_start));
  obs::TraceMark(trace, "embed", span_start);
  response.embedding_distances = embed_cost;

  // Pin one consistent (rows, ids, count) snapshot for the whole query:
  // filter and refine see the same database state however many
  // mutations land meanwhile.
  EmbeddedDatabase::Snapshot snap = db_->snapshot();
  const EmbeddedDatabase::View& view = snap.view();
  if (view.empty()) {
    return Status::FailedPrecondition("embedded database is empty");
  }
  const size_t k = options.k;
  const size_t p = std::min(options.p, view.size());

  // Reduced-precision scans need the matching shadow matrix in the
  // pinned view; fail the request cleanly instead of tripping the
  // scorer's internal contract check.
  uint32_t needed = ShadowMaskFor(options.filter_precision);
  if ((view.shadows() & needed) != needed) {
    return Status::FailedPrecondition(
        std::string("filter precision ") +
        FilterPrecisionName(options.filter_precision) +
        " needs a shadow matrix this database does not carry; call "
        "EnableFilterShadows on it first");
  }

  // Filter step: one streaming early-abandon scan keeping the top p.
  FilterScanStats scan_stats;
  span_start = obs::TraceNowNs(trace);
  stage_start = MonotonicClock::now();
  std::vector<ScoredIndex> candidates =
      scorer_->ScoreTopP(fq, view, p, options.filter_precision, &scan_stats);
  filter_ns_->Record(NsSince(stage_start));
  filter_rows_visited_total_->Add(scan_stats.rows_visited);
  filter_rows_pruned_total_->Add(scan_stats.rows_pruned);
  obs::TraceMark(
      trace, "filter_scan", span_start,
      {obs::TraceArg{"rows", static_cast<int64_t>(scan_stats.rows_visited),
                     nullptr},
       obs::TraceArg{"rows_pruned",
                     static_cast<int64_t>(scan_stats.rows_pruned), nullptr},
       obs::TraceArg{"simd", 0,
                     simd::SimdLevelName(simd::ActiveSimdLevel())},
       obs::TraceArg{"precision", 0,
                     FilterPrecisionName(options.filter_precision)}});

  // The monolithic engine is one pseudo-shard: every row scanned, every
  // candidate contributed — the same shape the sharded engine reports,
  // so stats consumers need no backend-specific cases.
  if (options.want_stats) {
    response.shard_stats = {{view.size(), candidates.size()}};
  }

  // Refine step: exact distances on the p candidates only, resolving
  // rows to database ids through the pinned snapshot's id column.
  span_start = obs::TraceNowNs(trace);
  stage_start = MonotonicClock::now();
  std::vector<ScoredIndex> refined;
  refined.reserve(candidates.size());
  for (const ScoredIndex& c : candidates) {
    refined.push_back({c.index, dx(view.id_of(c.index))});
  }
  std::sort(refined.begin(), refined.end());
  if (refined.size() > k) refined.resize(k);
  refine_ns_->Record(NsSince(stage_start));
  obs::TraceMark(trace, "refine", span_start,
                 {obs::TraceArg{"candidates",
                                static_cast<int64_t>(candidates.size()),
                                nullptr}});
  response.neighbors = std::move(refined);
  response.exact_distances = embed_cost + candidates.size();
  retrievals_total_->Increment();
  exact_distances_total_->Add(response.exact_distances);

  // Quality audit hook: offer 1-in-N completed responses to the
  // monitor, handing it the SAME pinned snapshot this response was
  // served from so the background exact re-scan scores identical rows
  // under concurrent mutation.  Costs one atomic tick when a monitor is
  // attached; sampled responses additionally move the pin instead of
  // dropping it here.
  if (options.audit_monitor != nullptr &&
      options.audit_monitor->ShouldSample()) {
    obs::AuditTask audit;
    audit.dx = dx;
    audit.k = k;
    audit.served.reserve(response.neighbors.size());
    for (const ScoredIndex& nb : response.neighbors) {
      audit.served.push_back({view.id_of(nb.index), nb.score});
    }
    audit.snapshots.push_back(std::move(snap));
    audit.trace = trace_ptr;
    options.audit_monitor->SubmitAudit(std::move(audit));
  }
  return response;
}

StatusOr<std::vector<RetrievalResponse>> RetrievalEngine::RetrieveBatch(
    const std::vector<DxToDatabaseFn>& queries,
    const RetrievalOptions& options) const {
  // Validate once up front so a bad parameter fails the whole batch
  // instead of every entry failing identically in parallel.
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  if (db_->empty()) {
    return Status::FailedPrecondition("embedded database is empty");
  }

  std::vector<RetrievalResponse> results(queries.size());
  // Parameters were validated above, but a concurrent mutation stream
  // can still empty the database mid-batch; collect the first such
  // failure and fail the batch honestly instead of crashing.
  std::mutex error_mu;
  Status first_error = Status::OK();
  // Grain 2: one item is a whole filter-and-refine retrieval, expensive
  // enough to parallelize even a handful of queries.
  ParallelForGrain(
      0, queries.size(), 2,
      [&](size_t i) {
        StatusOr<RetrievalResponse> r =
            RetrieveOne(queries[i], options, /*trace=*/{});
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = r.status();
          return;
        }
        results[i] = std::move(r).value();
      },
      options.num_threads);
  QSE_RETURN_IF_ERROR(first_error);
  return results;
}

StatusOr<ScanCandidatesResult> RetrievalEngine::ScanCandidates(
    const Vector& embedded_query, const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  if (embedded_query.size() != db_->dims()) {
    return Status::InvalidArgument(
        "embedded query has " + std::to_string(embedded_query.size()) +
        " dims, database holds " + std::to_string(db_->dims()));
  }
  EmbeddedDatabase::Snapshot snap = db_->snapshot();
  const EmbeddedDatabase::View& view = snap.view();
  // Unlike Retrieve, an empty backend is NOT an error here: a scan
  // contributes nothing, and the gathering caller — who can see every
  // shard — decides whether overall emptiness is FailedPrecondition.
  if (view.empty()) return ScanCandidatesResult{};
  uint32_t needed = ShadowMaskFor(options.filter_precision);
  if ((view.shadows() & needed) != needed) {
    return Status::FailedPrecondition(
        std::string("filter precision ") +
        FilterPrecisionName(options.filter_precision) +
        " needs a shadow matrix this database does not carry; call "
        "EnableFilterShadows on it first");
  }
  const size_t p = std::min(options.p, view.size());

  FilterScanStats scan_stats;
  MonotonicClock::time_point stage_start = MonotonicClock::now();
  std::vector<ScoredIndex> local = scorer_->ScoreTopP(
      embedded_query, view, p, options.filter_precision, &scan_stats);
  filter_ns_->Record(NsSince(stage_start));
  filter_rows_visited_total_->Add(scan_stats.rows_visited);
  filter_rows_pruned_total_->Add(scan_stats.rows_pruned);

  // Rows -> database ids through the same snapshot, then re-sort into
  // the (score, id) total order the k-way merge requires — exactly the
  // per-shard translation ShardedRetrievalEngine::ScatterGather does.
  for (ScoredIndex& c : local) c.index = view.id_of(c.index);
  std::sort(local.begin(), local.end());

  ScanCandidatesResult result;
  result.candidates = std::move(local);
  result.rows = view.size();
  result.rows_pruned = scan_stats.rows_pruned;
  return result;
}

Status RetrievalEngine::InsertEmbedded(size_t db_id,
                                       const Vector& embedded_row) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (row_of_.count(db_id) != 0) {
    return Status::InvalidArgument("database id already present: " +
                                   std::to_string(db_id));
  }
  if (embedded_row.size() != db_->dims()) {
    return Status::InvalidArgument(
        "embedded row has " + std::to_string(embedded_row.size()) +
        " dims, database holds " + std::to_string(db_->dims()));
  }
  size_t row = db_->Append(embedded_row, db_id);
  row_of_.emplace(db_id, row);
  return Status::OK();
}

Status RetrievalEngine::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (row_of_.count(db_id) != 0) {
    return Status::InvalidArgument("database id already present: " +
                                   std::to_string(db_id));
  }
  Vector embedded = embedder_->Embed(dx, nullptr);
  if (embedded.size() != db_->dims()) {
    return Status::Internal("embedder produced " +
                            std::to_string(embedded.size()) +
                            " dims, database holds " +
                            std::to_string(db_->dims()));
  }
  size_t row = db_->Append(embedded, db_id);
  row_of_.emplace(db_id, row);
  return Status::OK();
}

void RetrievalEngine::RebuildIdIndex() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  std::vector<size_t> ids = db_->ids();
  row_of_.clear();
  row_of_.reserve(ids.size());
  for (size_t row = 0; row < ids.size(); ++row) {
    bool inserted = row_of_.emplace(ids[row], row).second;
    QSE_CHECK_MSG(inserted, "duplicate database id " << ids[row]);
  }
}

Status RetrievalEngine::Remove(size_t db_id) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  auto it = row_of_.find(db_id);
  if (it == row_of_.end()) {
    return Status::NotFound("database id not present: " +
                            std::to_string(db_id));
  }
  size_t row = it->second;
  row_of_.erase(it);
  size_t moved_from = db_->SwapRemove(row);
  if (moved_from != row) {
    // The former last row now lives at `row`; the database already
    // swapped its id column, so read the moved id back from it.
    row_of_[db_->id_of(row)] = row;
  }
  return Status::OK();
}

}  // namespace qse
