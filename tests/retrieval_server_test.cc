// End-to-end tests of the multi-node serving tier: a RetrievalServer
// over a real engine, a RemoteRetrievalBackend speaking to it over
// loopback TCP, and the composed ShardedRetrievalEngine scattering over
// remote shards.  The headline contract: remote results are
// bit-identical to in-process results at equal p.
#include "src/net/retrieval_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/embedding/fastmap.h"
#include "src/net/remote_backend.h"
#include "src/net/wire_codec.h"
#include "src/retrieval/filter_refine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace qse {
namespace net {
namespace {

/// A full local stack: oracle, embedder, database, engine — the thing a
/// shard server wraps and the reference the tests compare against.
struct Stack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  std::unique_ptr<RetrievalEngine> engine;

  Stack(size_t n_db, size_t n_query, uint64_t seed,
        std::vector<size_t> ids = {})
      : oracle(test::MakePlaneOracle(n_db + n_query, seed)),
        db_ids(ids.empty() ? test::Iota(n_db) : std::move(ids)),
        query_ids(test::Iota(n_query, n_db)),
        model([&] {
          FastMapOptions options;
          options.dims = 3;
          return BuildFastMap(oracle, test::Iota(n_db), options);
        }()),
        db(EmbedDatabase(model, oracle, db_ids)) {
    engine = std::make_unique<RetrievalEngine>(&model, &scorer, &db, db_ids);
  }

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [this, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  }
};

TransportOptions FastTransport() {
  TransportOptions options;
  options.connect_timeout = std::chrono::milliseconds(1000);
  options.read_timeout = std::chrono::milliseconds(2000);
  options.write_timeout = std::chrono::milliseconds(2000);
  return options;
}

RetrievalServerOptions ServerOptions() {
  RetrievalServerOptions options;
  options.transport = FastTransport();
  return options;
}

RemoteBackendOptions ClientOptions() {
  RemoteBackendOptions options;
  options.transport = FastTransport();
  return options;
}

TEST(RetrievalServerTest, RemoteRetrieveMatchesLocalBitForBit) {
  Stack stack(60, 6, 41);
  RetrievalServer server(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(server.Start(0).ok());
  RemoteRetrievalBackend remote(&stack.model, "127.0.0.1", server.port(),
                                ClientOptions());

  for (size_t p : {size_t{1}, size_t{10}, size_t{60}}) {
    for (size_t query_id : stack.query_ids) {
      RetrievalOptions options(3, p);
      options.want_stats = true;
      auto want = stack.engine->Retrieve({stack.QueryDx(query_id), options});
      auto got = remote.Retrieve({stack.QueryDx(query_id), options});
      ASSERT_TRUE(want.ok() && got.ok())
          << want.status().message() << got.status().message();
      ASSERT_EQ(want->neighbors.size(), got->neighbors.size());
      for (size_t i = 0; i < want->neighbors.size(); ++i) {
        // Local indices are rows; remote are database ids.
        EXPECT_EQ(stack.engine->db_id_of(want->neighbors[i].index),
                  got->neighbors[i].index);
        EXPECT_EQ(want->neighbors[i].score, got->neighbors[i].score);
      }
      EXPECT_EQ(want->exact_distances, got->exact_distances);
      EXPECT_EQ(want->embedding_distances, got->embedding_distances);
      ASSERT_EQ(got->shard_stats.size(), 1u);
      EXPECT_EQ(got->shard_stats[0].rows, stack.db_ids.size());
    }
  }
  server.Stop();
}

TEST(RetrievalServerTest, ComposedShardedEngineMatchesInProcessSharded) {
  // The tentpole acceptance shape in miniature: 2 remote shards behind
  // one composed sharded engine, against the same 2-shard in-process
  // engine; results must be bit-identical at equal p.
  Stack stack(80, 8, 42);
  const size_t kShards = 2;

  // Partition by the same hash the sharded engine uses, preserving
  // ascending id order inside each shard.
  std::vector<std::vector<size_t>> shard_ids(kShards);
  for (size_t id : stack.db_ids) {
    shard_ids[HashShardOf(id, kShards)].push_back(id);
  }

  std::vector<std::unique_ptr<EmbeddedDatabase>> shard_dbs;
  std::vector<std::unique_ptr<RetrievalEngine>> shard_engines;
  std::vector<std::unique_ptr<RetrievalServer>> servers;
  std::vector<std::shared_ptr<RetrievalBackend>> remotes;
  for (size_t s = 0; s < kShards; ++s) {
    shard_dbs.push_back(std::make_unique<EmbeddedDatabase>(
        EmbedDatabase(stack.model, stack.oracle, shard_ids[s])));
    shard_engines.push_back(std::make_unique<RetrievalEngine>(
        &stack.model, &stack.scorer, shard_dbs.back().get(), shard_ids[s]));
    servers.push_back(std::make_unique<RetrievalServer>(
        shard_engines.back().get(), ServerOptions()));
    ASSERT_TRUE(servers.back()->Start(0).ok());
    remotes.push_back(std::make_shared<RemoteRetrievalBackend>(
        &stack.model, "127.0.0.1", servers.back()->port(), ClientOptions()));
  }

  ShardedEngineOptions in_process_options;
  in_process_options.num_shards = kShards;
  ShardedRetrievalEngine in_process(&stack.model, &stack.scorer, stack.db,
                                    stack.db_ids, in_process_options);
  ShardedRetrievalEngine composed(&stack.model, remotes);
  ASSERT_EQ(composed.size(), in_process.size());

  for (size_t p : {size_t{1}, size_t{7}, size_t{80}}) {
    for (size_t query_id : stack.query_ids) {
      RetrievalOptions options(3, p);
      options.want_stats = true;
      auto want = in_process.Retrieve({stack.QueryDx(query_id), options});
      auto got = composed.Retrieve({stack.QueryDx(query_id), options});
      ASSERT_TRUE(want.ok() && got.ok())
          << want.status().message() << got.status().message();
      ASSERT_EQ(want->neighbors.size(), got->neighbors.size());
      for (size_t i = 0; i < want->neighbors.size(); ++i) {
        EXPECT_EQ(want->neighbors[i].index, got->neighbors[i].index);
        EXPECT_EQ(want->neighbors[i].score, got->neighbors[i].score);
      }
      EXPECT_EQ(want->exact_distances, got->exact_distances);
      ASSERT_EQ(want->shard_stats.size(), got->shard_stats.size());
      for (size_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(want->shard_stats[s].rows, got->shard_stats[s].rows);
        EXPECT_EQ(want->shard_stats[s].candidates,
                  got->shard_stats[s].candidates);
      }
    }
  }

  // Mutations route through the composed engine to the right remote
  // shard and show up in subsequent retrievals.
  const size_t new_id = stack.db_ids.size() + stack.query_ids.size() + 7;
  // dx for the new object: reuse a database point's distances (the
  // oracle has no object new_id, so insert a copy of object 0).
  auto new_dx = [&stack](size_t id) { return stack.oracle.Distance(0, id); };
  ASSERT_TRUE(composed.Insert(new_id, new_dx).ok());
  ASSERT_TRUE(in_process.Insert(new_id, new_dx).ok());
  EXPECT_EQ(composed.size(), in_process.size());
  auto want = in_process.Retrieve({stack.QueryDx(stack.query_ids[0]),
                                   RetrievalOptions(2, 20)});
  auto got = composed.Retrieve({stack.QueryDx(stack.query_ids[0]),
                                RetrievalOptions(2, 20)});
  ASSERT_TRUE(want.ok() && got.ok());
  ASSERT_EQ(want->neighbors.size(), got->neighbors.size());
  for (size_t i = 0; i < want->neighbors.size(); ++i) {
    EXPECT_EQ(want->neighbors[i].index, got->neighbors[i].index);
    EXPECT_EQ(want->neighbors[i].score, got->neighbors[i].score);
  }
  ASSERT_TRUE(composed.Remove(new_id).ok());
  ASSERT_TRUE(in_process.Remove(new_id).ok());
  EXPECT_EQ(composed.size(), in_process.size());
}

TEST(RetrievalServerTest, EmptyShardContributesNothing) {
  // One populated shard plus one empty shard: scatter succeeds and the
  // empty shard reports zero rows (OK-empty contract).
  Stack stack(30, 2, 43);
  EmbeddedDatabase empty_db(stack.model.dims());
  RetrievalEngine empty_engine(&stack.model, &stack.scorer, &empty_db, {});
  RetrievalServer empty_server(&empty_engine, ServerOptions());
  ASSERT_TRUE(empty_server.Start(0).ok());
  auto remote_empty = std::make_shared<RemoteRetrievalBackend>(
      &stack.model, "127.0.0.1", empty_server.port(), ClientOptions());

  auto scan = remote_empty->ScanCandidates(Vector(stack.model.dims(), 0.0),
                                           RetrievalOptions(1, 5));
  ASSERT_TRUE(scan.ok()) << scan.status().message();
  EXPECT_TRUE(scan->candidates.empty());
  EXPECT_EQ(scan->rows, 0u);

  // A standalone remote Retrieve against the empty database keeps the
  // engines' FailedPrecondition contract.
  auto retrieve = remote_empty->Retrieve(
      {stack.QueryDx(stack.query_ids[0]), RetrievalOptions(1, 5)});
  ASSERT_FALSE(retrieve.ok());
  EXPECT_EQ(retrieve.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RetrievalServerTest, DeadlinesAreHonoredEndToEnd) {
  Stack stack(40, 2, 44);
  RetrievalServerOptions server_options = ServerOptions();
  RetrievalServer server(stack.engine.get(), server_options);
  ASSERT_TRUE(server.Start(0).ok());
  RemoteRetrievalBackend remote(&stack.model, "127.0.0.1", server.port(),
                                ClientOptions());

  // Already-expired deadline: rejected client-side before any RPC.
  RetrievalOptions expired(1, 5);
  expired.deadline = RetrievalClock::now() - std::chrono::milliseconds(1);
  auto result = remote.Retrieve({stack.QueryDx(stack.query_ids[0]), expired});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // A server that drags its feet past the budget: the wire carries the
  // remaining budget, the server sleeps past it via fault injection, and
  // whichever side notices first reports kDeadlineExceeded.
  RetrievalServerOptions slow_options = ServerOptions();
  slow_options.debug_delay_every_n = 1;  // every scan
  slow_options.debug_delay = std::chrono::milliseconds(300);
  RetrievalServer slow_server(stack.engine.get(), slow_options);
  ASSERT_TRUE(slow_server.Start(0).ok());
  RemoteBackendOptions no_retry = ClientOptions();
  no_retry.retry_reads = false;
  RemoteRetrievalBackend slow_remote(&stack.model, "127.0.0.1",
                                     slow_server.port(), no_retry);
  RetrievalOptions tight(1, 5);
  tight.deadline = RetrievalOptions::DeadlineIn(std::chrono::milliseconds(50));
  result = slow_remote.Retrieve({stack.QueryDx(stack.query_ids[0]), tight});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // A comfortable budget sails through the same slow server.
  RetrievalOptions roomy(1, 5);
  roomy.deadline = RetrievalOptions::DeadlineIn(std::chrono::seconds(5));
  result = slow_remote.Retrieve({stack.QueryDx(stack.query_ids[0]), roomy});
  EXPECT_TRUE(result.ok()) << result.status().message();
}

TEST(RetrievalServerTest, ServerRejectsExpiredBudgetBeforeScanning) {
  // Wire-level: a request whose budget is 1ns is already dead on
  // arrival; the server must answer kDeadlineExceeded without scanning.
  Stack stack(30, 1, 45);
  RetrievalServer server(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(server.Start(0).ok());
  auto sock =
      Socket::Connect("127.0.0.1", server.port(), FastTransport());
  ASSERT_TRUE(sock.ok());
  WireRequest request;
  request.op = WireOp::kScan;
  request.deadline_budget_ns = 1;
  request.options = RetrievalOptions(1, 5);
  request.query = Vector(stack.model.dims(), 0.0);
  ASSERT_TRUE(sock.value().SendFrame(EncodeRequest(request)).ok());
  auto frame = sock.value().RecvFrame();
  ASSERT_TRUE(frame.ok());
  WireResponse response;
  ASSERT_TRUE(DecodeResponse(frame.value(), &response).ok());
  EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.neighbors.empty());
}

TEST(RetrievalServerTest, RetrieveRawUsesServerSideResolver) {
  // kRetrieve: the raw query crosses the wire and the server resolves
  // it to a dx itself — the thin-client path.
  Stack stack(50, 3, 46);
  RetrievalServerOptions options = ServerOptions();
  options.raw_query_resolver =
      [&stack](const std::vector<double>& raw) -> DxToDatabaseFn {
    // Raw query = a point in the plane; dx = L2 to database objects.
    return [&stack, raw](size_t id) {
      return L2Distance(raw, stack.oracle.object(id));
    };
  };
  RetrievalServer server(stack.engine.get(), options);
  ASSERT_TRUE(server.Start(0).ok());
  RemoteRetrievalBackend remote(&stack.model, "127.0.0.1", server.port(),
                                ClientOptions());

  const size_t query_id = stack.query_ids[0];
  const Vector& raw = stack.oracle.object(query_id);
  RetrievalOptions ropts(3, 10);
  auto want = stack.engine->Retrieve({stack.QueryDx(query_id), ropts});
  auto got = remote.RetrieveRaw(raw, ropts);
  ASSERT_TRUE(want.ok() && got.ok())
      << want.status().message() << got.status().message();
  ASSERT_EQ(want->neighbors.size(), got->neighbors.size());
  for (size_t i = 0; i < want->neighbors.size(); ++i) {
    EXPECT_EQ(stack.engine->db_id_of(want->neighbors[i].index),
              got->neighbors[i].index);
    EXPECT_EQ(want->neighbors[i].score, got->neighbors[i].score);
  }

  // Without a resolver the op is a FailedPrecondition, not a crash.
  RetrievalServer bare_server(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(bare_server.Start(0).ok());
  RemoteRetrievalBackend bare_remote(&stack.model, "127.0.0.1",
                                     bare_server.port(), ClientOptions());
  auto refused = bare_remote.RetrieveRaw(raw, ropts);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RetrievalServerTest, ApplicationErrorsCrossTheWireIntact) {
  Stack stack(30, 1, 47);
  RetrievalServer server(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(server.Start(0).ok());
  RemoteRetrievalBackend remote(&stack.model, "127.0.0.1", server.port(),
                                ClientOptions());

  // Duplicate insert: InvalidArgument from the far side.
  Vector row(stack.model.dims(), 0.5);
  Status dup = remote.InsertEmbedded(stack.db_ids[0], row);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);

  // Unknown remove: NotFound.
  Status missing = remote.Remove(999999);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  // Wrong dimensionality: InvalidArgument.
  Status bad_dims = remote.InsertEmbedded(424242, Vector(1, 0.0));
  EXPECT_EQ(bad_dims.code(), StatusCode::kInvalidArgument);

  // size() probes the real size.
  EXPECT_EQ(remote.size(), stack.db_ids.size());
}

TEST(RetrievalServerTest, MalformedFramesAnswerThenRecoverOrClose) {
  Stack stack(30, 1, 48);
  RetrievalServer server(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(server.Start(0).ok());
  auto sock = Socket::Connect("127.0.0.1", server.port(), FastTransport());
  ASSERT_TRUE(sock.ok());

  // Intact frame, wrong magic: InvalidArgument response, connection
  // stays usable.
  std::string bad_magic = EncodeRequest(WireRequest{});
  bad_magic[0] ^= 0xFF;
  ASSERT_TRUE(sock.value().SendFrame(bad_magic).ok());
  auto frame = sock.value().RecvFrame();
  ASSERT_TRUE(frame.ok());
  WireResponse response;
  ASSERT_TRUE(DecodeResponse(frame.value(), &response).ok());
  EXPECT_EQ(response.code, StatusCode::kInvalidArgument);

  // Same connection still serves a well-formed request.
  WireRequest info;
  info.op = WireOp::kInfo;
  ASSERT_TRUE(sock.value().SendFrame(EncodeRequest(info)).ok());
  frame = sock.value().RecvFrame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(DecodeResponse(frame.value(), &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.db_size, stack.db_ids.size());

  // Structurally corrupt frame (truncated mid-field): the server
  // answers kDataLoss and closes the connection.
  std::string truncated = EncodeRequest(info).substr(0, 12);
  ASSERT_TRUE(sock.value().SendFrame(truncated).ok());
  frame = sock.value().RecvFrame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(DecodeResponse(frame.value(), &response).ok());
  EXPECT_EQ(response.code, StatusCode::kDataLoss);
  auto closed = sock.value().RecvFrame();
  EXPECT_FALSE(closed.ok());
}

TEST(RetrievalServerTest, StopUnblocksClientsAndClientsReportUnavailable) {
  Stack stack(30, 1, 49);
  auto server =
      std::make_unique<RetrievalServer>(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(server->Start(0).ok());
  const uint16_t port = server->port();
  RemoteBackendOptions no_retry = ClientOptions();
  no_retry.retry_reads = false;
  RemoteRetrievalBackend remote(&stack.model, "127.0.0.1", port, no_retry);
  EXPECT_EQ(remote.size(), stack.db_ids.size());  // warm the pool
  server->Stop();
  server.reset();
  auto result = remote.Retrieve(
      {stack.QueryDx(stack.query_ids[0]), RetrievalOptions(1, 5)});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RetrievalServerTest, TraceSpansAreGraftedAcrossTheWire) {
  Stack stack(40, 1, 50);
  RetrievalServer server(stack.engine.get(), ServerOptions());
  ASSERT_TRUE(server.Start(0).ok());
  RemoteRetrievalBackend remote(&stack.model, "127.0.0.1", server.port(),
                                ClientOptions());

  RetrievalRequest request;
  request.dx = stack.QueryDx(stack.query_ids[0]);
  request.options = RetrievalOptions(2, 10);
  request.trace = std::make_shared<obs::RequestTrace>();
  auto result = remote.Retrieve(request);
  ASSERT_TRUE(result.ok()) << result.status().message();

  bool saw_rpc = false, saw_remote = false;
  uint64_t rpc_start = 0, rpc_end = 0;
  for (const obs::TraceSpan& span : request.trace->spans()) {
    if (std::string(span.name) == "rpc_scan") {
      saw_rpc = true;
      rpc_start = span.start_ns;
      rpc_end = span.start_ns + span.dur_ns;
    }
  }
  ASSERT_TRUE(saw_rpc);
  for (const obs::TraceSpan& span : request.trace->spans()) {
    if (std::string(span.name).rfind("remote:", 0) == 0) {
      saw_remote = true;
      // Grafted spans sit inside the client's RPC window.
      EXPECT_GE(span.start_ns, rpc_start);
      EXPECT_LE(span.start_ns, rpc_end);
    }
  }
  EXPECT_TRUE(saw_remote);
}

}  // namespace
}  // namespace net
}  // namespace qse
