#ifndef QSE_CORE_TRIPLE_SAMPLER_H_
#define QSE_CORE_TRIPLE_SAMPLER_H_

#include <vector>

#include "src/core/triple.h"
#include "src/util/matrix.h"
#include "src/util/random.h"

namespace qse {

/// Samples `count` training triples (q, a, b) uniformly at random from the
/// training set, as in the original BoostMap algorithm ("Ra" in the
/// paper's experiment naming).  q, a, b are distinct; the label is set
/// from the exact distances in `train_dist` (|Xtr| x |Xtr|).  Triples with
/// DX(q,a) == DX(q,b) ("type 0") are rejected and resampled.
std::vector<Triple> SampleRandomTriples(const Matrix& train_dist,
                                        size_t count, Rng* rng);

/// Samples triples with the selective heuristic of Sec. 6 ("Se"):
///   1. q uniform in Xtr,
///   2. k' uniform in [1, k1]; a = the k'-th nearest neighbor of q,
///   3. k' uniform in [k1+1, |Xtr|-1]; b = the k'-th nearest neighbor.
/// The label is therefore always +1 (a is strictly nearer, up to ties,
/// which are rejected).  k1 should be set from the maximum number of
/// neighbors kmax the embedding must retrieve: the paper recommends
/// k1 ≈ kmax * |Xtr| / |database| (e.g. k1 = 5 for kmax = 50 when Xtr is
/// a tenth of the database).
///
/// Requires k1 >= 1 and k1 + 1 <= |Xtr| - 1.
std::vector<Triple> SampleSelectiveTriples(const Matrix& train_dist,
                                           size_t count, size_t k1,
                                           Rng* rng);

/// Per-row neighbor ordering of a distance matrix: result[i] lists all
/// other indices sorted by ascending distance from i (deterministic
/// tie-break by index).  result[i][0] is i's nearest neighbor.  Shared by
/// the selective sampler and by evaluation code.
std::vector<std::vector<uint32_t>> NeighborOrdering(const Matrix& dist);

}  // namespace qse

#endif  // QSE_CORE_TRIPLE_SAMPLER_H_
