#include "src/embedding/lipschitz.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace qse {

LipschitzModel BuildLipschitz(const std::vector<size_t>& sample_ids,
                              const LipschitzOptions& options) {
  QSE_CHECK_MSG(!sample_ids.empty(), "need a non-empty sample");
  Rng rng(options.seed);
  const size_t n = sample_ids.size();

  size_t log2n = 0;
  while ((1ull << (log2n + 1)) <= n) ++log2n;

  std::vector<std::vector<uint32_t>> sets;
  sets.reserve(options.dims);
  for (size_t i = 0; i < options.dims; ++i) {
    size_t size = options.bourgain_sizes
                      ? (1ull << (i % (log2n + 1)))
                      : std::max<size_t>(1, options.fixed_set_size);
    size = std::min(size, n);
    std::vector<size_t> chosen = rng.SampleWithoutReplacement(n, size);
    std::vector<uint32_t> set;
    set.reserve(size);
    for (size_t idx : chosen) {
      set.push_back(static_cast<uint32_t>(sample_ids[idx]));
    }
    std::sort(set.begin(), set.end());
    sets.push_back(std::move(set));
  }
  return LipschitzModel(std::move(sets));
}

Vector LipschitzModel::Embed(const DxToDatabaseFn& dx,
                             size_t* num_exact) const {
  std::unordered_map<uint32_t, double> raw;
  auto lookup = [&](uint32_t db_id) {
    auto it = raw.find(db_id);
    if (it != raw.end()) return it->second;
    double d = dx(db_id);
    raw.emplace(db_id, d);
    return d;
  };
  Vector out(sets_.size());
  for (size_t i = 0; i < sets_.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t id : sets_[i]) {
      best = std::min(best, lookup(id));
    }
    out[i] = best;
  }
  if (num_exact != nullptr) *num_exact = raw.size();
  return out;
}

size_t LipschitzModel::EmbeddingCost() const {
  std::unordered_set<uint32_t> seen;
  for (const auto& set : sets_) seen.insert(set.begin(), set.end());
  return seen.size();
}

LipschitzModel LipschitzModel::Prefix(size_t d) const {
  size_t take = d < sets_.size() ? d : sets_.size();
  return LipschitzModel(std::vector<std::vector<uint32_t>>(
      sets_.begin(), sets_.begin() + static_cast<long>(take)));
}

namespace {
constexpr uint32_t kLipschitzMagic = 0x514C5031;  // "QLP1"
}  // namespace

Status LipschitzModel::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  BinaryWriter w(&out);
  w.WriteU32(kLipschitzMagic);
  w.WriteU64(sets_.size());
  for (const auto& set : sets_) w.WriteU32Vec(set);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<LipschitzModel> LipschitzModel::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("model file not found: " + path);
  BinaryReader r(&in);
  uint32_t magic = 0;
  QSE_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kLipschitzMagic) {
    return Status::IOError("bad magic in Lipschitz model file: " + path);
  }
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&n));
  if (n > (1ull << 20)) return Status::IOError("set count implausible");
  std::vector<std::vector<uint32_t>> sets(n);
  for (uint64_t i = 0; i < n; ++i) {
    QSE_RETURN_IF_ERROR(r.ReadU32Vec(&sets[i]));
  }
  return LipschitzModel(std::move(sets));
}

}  // namespace qse
