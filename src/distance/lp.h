#ifndef QSE_DISTANCE_LP_H_
#define QSE_DISTANCE_LP_H_

#include <cstddef>

#include "src/distance/distance.h"

namespace qse {

/// L1 (Manhattan) distance.  Requires equal dimensionality.
double L1Distance(const Vector& a, const Vector& b);

/// L2 (Euclidean) distance.
double L2Distance(const Vector& a, const Vector& b);

/// Squared Euclidean distance (avoids the sqrt; used in hot loops).
double SquaredL2Distance(const Vector& a, const Vector& b);

/// L-infinity (Chebyshev) distance.
double LInfDistance(const Vector& a, const Vector& b);

/// General Minkowski Lp distance for p >= 1.
double LpDistance(const Vector& a, const Vector& b, double p);

}  // namespace qse

#endif  // QSE_DISTANCE_LP_H_
