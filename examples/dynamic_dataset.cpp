// Dynamic datasets (paper Sec. 7.1): adding objects online and monitoring
// embedding drift.
//
// The paper notes that as long as the underlying distribution is stable,
// adding an object only costs its embedding (<= 2d exact distances), and
// that drift can be detected by re-measuring the embedding's triple
// classification error on freshly sampled triples — retraining when it
// degrades.  This example demonstrates both: it grows the database
// online, then shifts the data distribution and shows the error monitor
// firing.
//
// Build: cmake --build build && ./build/examples/dynamic_dataset
#include <cstdio>
#include <numeric>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/random.h"
#include "src/util/top_k.h"

namespace {

/// Triple classification error of the model on triples sampled "the same
/// way we would choose training triples" (Sec. 7.1's drift monitor):
/// a is one of q's 5 nearest neighbors, b has rank in (5, 50] — the
/// fine-grained discrimination that k-NN retrieval depends on.  Random
/// q-a-b triples would be dominated by easy far-apart comparisons and
/// mask the drift.
double TripleError(const qse::QuerySensitiveEmbedding& model,
                   const qse::ObjectOracle<qse::Vector>& oracle,
                   const std::vector<qse::Vector>& embedded,
                   size_t db_size, qse::Rng* rng, int trials = 400) {
  size_t wrong = 0, total = 0;
  std::vector<qse::ScoredIndex> ranked;
  for (int t = 0; t < trials; ++t) {
    size_t q = rng->Index(db_size);
    std::vector<double> dist(db_size);
    for (size_t i = 0; i < db_size; ++i) {
      dist[i] = i == q ? 1e300 : oracle.Distance(q, i);
    }
    ranked = qse::SmallestK(dist, 50);
    size_t a = ranked[rng->Index(5)].index;
    size_t b = ranked[5 + rng->Index(45)].index;
    double da = oracle.Distance(q, a), db = oracle.Distance(q, b);
    if (da == db) continue;
    double margin = model.TripleMargin(embedded[q], embedded[a],
                                       embedded[b]);
    bool correct = (margin > 0) == (da < db);
    if (!correct) ++wrong;
    ++total;
  }
  return static_cast<double>(wrong) / static_cast<double>(total);
}

}  // namespace

int main() {
  using namespace qse;

  // Initial database: points clustered in the lower-left quadrant.
  Rng rng(7);
  std::vector<Vector> points;
  for (int i = 0; i < 600; ++i) {
    points.push_back({rng.Uniform(0, 0.5), rng.Uniform(0, 0.5)});
  }
  // Reserve capacity: the oracle object container is fixed, so build it
  // with all objects we may ever add; "online" ids are revealed later.
  for (int i = 0; i < 300; ++i) {  // Same-distribution additions.
    points.push_back({rng.Uniform(0, 0.5), rng.Uniform(0, 0.5)});
  }
  // Distribution-shifted additions: a tight, far-away cluster.  Within
  // that cluster the original reference objects barely discriminate
  // (their distances are dominated by the cluster offset), so triples
  // drawn among the new objects are frequently misclassified.
  for (int i = 0; i < 600; ++i) {
    points.push_back({rng.Uniform(2.0, 2.15), rng.Uniform(2.0, 2.15)});
  }
  ObjectOracle<Vector> oracle(std::move(points), L2Distance);

  size_t live = 600;  // Objects currently in the database.
  std::vector<size_t> db_ids(live);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 3000;
  config.k1 = 5;
  config.boost.rounds = 24;
  config.boost.embeddings_per_round = 24;
  std::vector<size_t> sample(db_ids.begin(), db_ids.begin() + 150);
  auto artifacts = TrainBoostMap(oracle, sample, sample, config);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "%s\n", artifacts.status().ToString().c_str());
    return 1;
  }
  const QuerySensitiveEmbedding& model = artifacts->model;

  // Embed the initial database.
  std::vector<Vector> embedded(oracle.size());
  size_t add_cost = 0;
  auto embed_object = [&](size_t id) {
    size_t cost = 0;
    embedded[id] = model.Embed(
        [&](size_t o) { return o == id ? 0.0 : oracle.Distance(id, o); },
        &cost);
    return cost;
  };
  for (size_t id = 0; id < live; ++id) embed_object(id);

  Rng monitor_rng(99);
  std::printf("initial error on random triples: %.3f\n",
              TripleError(model, oracle, embedded, live, &monitor_rng));

  // --- Phase 1: add 300 same-distribution objects online.
  for (size_t id = live; id < live + 300; ++id) add_cost += embed_object(id);
  live += 300;
  double err_same =
      TripleError(model, oracle, embedded, live, &monitor_rng);
  std::printf("after adding 300 in-distribution objects (avg %zu exact "
              "distances each): error %.3f\n",
              add_cost / 300, err_same);

  // --- Phase 2: add 600 distribution-shifted objects.
  for (size_t id = live; id < live + 600; ++id) embed_object(id);
  live += 600;
  double err_shift =
      TripleError(model, oracle, embedded, live, &monitor_rng);
  std::printf("after adding 600 distribution-SHIFTED objects: error %.3f\n",
              err_shift);

  if (err_shift > err_same * 1.3) {
    std::printf("\ndrift detected (error grew %.1fx) -> retraining, as "
                "Sec. 7.1 prescribes\n",
                err_shift / err_same);
    std::vector<size_t> all_ids(live);
    std::iota(all_ids.begin(), all_ids.end(), 0);
    Rng resample(5);
    auto picks = resample.SampleWithoutReplacement(live, 150);
    std::vector<size_t> new_sample;
    for (size_t p : picks) new_sample.push_back(all_ids[p]);
    auto retrained = TrainBoostMap(oracle, new_sample, new_sample, config);
    if (retrained.ok()) {
      for (size_t id = 0; id < live; ++id) {
        size_t cost = 0;
        embedded[id] = retrained->model.Embed(
            [&](size_t o) { return o == id ? 0.0 : oracle.Distance(id, o); },
            &cost);
      }
      std::printf("retrained model error: %.3f\n",
                  TripleError(retrained->model, oracle, embedded, live,
                              &monitor_rng));
    }
  } else {
    std::printf("no significant drift detected\n");
  }
  return 0;
}
