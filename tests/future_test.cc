#include "src/util/future.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace {

using namespace std::chrono_literals;

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
}

TEST(FutureTest, SetBeforeGet) {
  Promise<int> p;
  Future<int> f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.Set(42);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.Get(), 42);
  // The value stays readable: Get is not a one-shot consume.
  EXPECT_EQ(f.Get(), 42);
}

TEST(FutureTest, GetBlocksUntilSetFromAnotherThread) {
  Promise<std::string> p;
  Future<std::string> f = p.future();
  std::thread setter([&] {
    std::this_thread::sleep_for(10ms);
    p.Set("done");
  });
  EXPECT_EQ(f.Get(), "done");
  setter.join();
}

TEST(FutureTest, WaitForTimesOutThenSucceeds) {
  Promise<int> p;
  Future<int> f = p.future();
  EXPECT_FALSE(f.WaitFor(5ms));
  p.Set(1);
  EXPECT_TRUE(f.WaitFor(0ms));
}

TEST(FutureTest, OnReadyAfterSetRunsInline) {
  Promise<int> p;
  Future<int> f = p.future();
  p.Set(7);
  int observed = 0;
  f.OnReady([&](const int& v) { observed = v; });
  EXPECT_EQ(observed, 7);
}

TEST(FutureTest, OnReadyBeforeSetRunsOnSettingThread) {
  Promise<int> p;
  Future<int> f = p.future();
  std::atomic<int> observed{0};
  std::thread::id callback_thread;
  f.OnReady([&](const int& v) {
    callback_thread = std::this_thread::get_id();
    observed.store(v);
  });
  EXPECT_EQ(observed.load(), 0);
  std::thread setter([&] { p.Set(9); });
  std::thread::id setter_id = setter.get_id();
  setter.join();
  EXPECT_EQ(observed.load(), 9);
  EXPECT_EQ(callback_thread, setter_id);
}

TEST(FutureTest, ManyWaitersAllWake) {
  Promise<int> p;
  Future<int> f = p.future();
  std::atomic<int> sum{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] { sum.fetch_add(f.Get()); });
  }
  p.Set(5);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(sum.load(), 20);
}

TEST(FutureTest, PromiseCopiesShareState) {
  Promise<int> p;
  Promise<int> copy = p;  // The server keeps one handle in the request
  Future<int> f = p.future();  // and one at the submitter.
  copy.Set(3);
  EXPECT_EQ(f.Get(), 3);
}

TEST(FutureTest, CarriesStatusOrLikeTheServer) {
  Promise<StatusOr<int>> p;
  Future<StatusOr<int>> f = p.future();
  p.Set(Status::DeadlineExceeded("late"));
  ASSERT_FALSE(f.Get().ok());
  EXPECT_EQ(f.Get().status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace qse
