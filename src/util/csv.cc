#include "src/util/csv.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qse {

namespace {

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Table::Fmt(size_t v) { return std::to_string(v); }
std::string Table::Fmt(long long v) { return std::to_string(v); }

std::string Table::ToCsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << EscapeCsvField(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << EscapeCsvField(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::ToPretty() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << ToCsv();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qse
