#ifndef QSE_CORE_WEAK_CLASSIFIER_H_
#define QSE_CORE_WEAK_CLASSIFIER_H_

#include <limits>

#include "src/core/embedding1d.h"

namespace qse {

/// A trained query-sensitive weak classifier Q̃_{F,V} with its AdaBoost
/// weight α (Sec. 5.1, Eq. 5):
///
///     Q̃_{F,V}(q, a, b) = S_{F,V}(q) · F̃(q, a, b)
///
/// where the splitter S_{F,V}(q) = 1 iff F(q) ∈ V = [lo, hi], and
/// F̃(q,a,b) = |F(q) - F(b)| - |F(q) - F(a)| (Eq. 3 specialized to 1D).
/// Query-insensitive classifiers (the original BoostMap) are the special
/// case lo = -inf, hi = +inf.
struct WeakClassifier {
  Embedding1DSpec spec;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  double alpha = 0.0;

  /// S_{F,V}(q) given the query's 1D projection F(q).
  bool Accepts(double fq) const { return fq >= lo && fq <= hi; }

  /// Q̃_{F,V}(q,a,b) given the three 1D projections.
  double Evaluate(double fq, double fa, double fb) const {
    if (!Accepts(fq)) return 0.0;
    double db = fq > fb ? fq - fb : fb - fq;
    double da = fq > fa ? fq - fa : fa - fq;
    return db - da;
  }

  bool is_query_sensitive() const {
    return lo != -std::numeric_limits<double>::infinity() ||
           hi != std::numeric_limits<double>::infinity();
  }
};

}  // namespace qse

#endif  // QSE_CORE_WEAK_CLASSIFIER_H_
