#include "src/core/qs_embedding.h"

#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>
#include <unordered_map>

#include "src/core/embedding1d.h"
#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace qse {

namespace {
constexpr uint32_t kModelMagic = 0x51534D31;  // "QSM1"
}  // namespace

double QuerySensitiveEmbedding::Coordinate::Value(double d1, double d2) const {
  if (type == Embedding1DSpec::Type::kReference) return d1;
  return PivotProjection(d1, d2, pivot_distance);
}

double QuerySensitiveEmbedding::Coordinate::Weight(double fq) const {
  double a = 0.0;
  for (const Term& term : terms) {
    if (fq >= term.lo && fq <= term.hi) a += term.alpha;
  }
  return a;
}

QuerySensitiveEmbedding QuerySensitiveEmbedding::FromTraining(
    const TrainingContext& ctx, const std::vector<WeakClassifier>& rounds,
    bool query_sensitive) {
  QuerySensitiveEmbedding model;
  model.query_sensitive_ = query_sensitive;
  model.rounds_.reserve(rounds.size());
  for (const WeakClassifier& wc : rounds) {
    StoredRound sr;
    sr.type = wc.spec.type;
    sr.db_id1 = static_cast<uint32_t>(ctx.candidate_db_id(wc.spec.c1));
    if (wc.spec.type == Embedding1DSpec::Type::kPivot) {
      sr.db_id2 = static_cast<uint32_t>(ctx.candidate_db_id(wc.spec.c2));
      sr.pivot_distance = ctx.CandCand(wc.spec.c1, wc.spec.c2);
    }
    sr.lo = wc.lo;
    sr.hi = wc.hi;
    sr.alpha = wc.alpha;
    model.rounds_.push_back(sr);
  }
  model.RebuildCoordinates();
  return model;
}

void QuerySensitiveEmbedding::RebuildCoordinates() {
  coords_.clear();
  // Collapse rounds to unique 1D embeddings (Sec. 5.4: "We construct the
  // set F of all unique 1D embeddings used in H").
  auto key_of = [](const StoredRound& r) {
    uint64_t tag = r.type == Embedding1DSpec::Type::kReference ? 0u : 1u;
    return (tag << 62) | (static_cast<uint64_t>(r.db_id1) << 31) |
           static_cast<uint64_t>(r.db_id2);
  };
  std::unordered_map<uint64_t, size_t> index_of;
  for (const StoredRound& r : rounds_) {
    uint64_t key = key_of(r);
    auto [it, inserted] = index_of.emplace(key, coords_.size());
    if (inserted) {
      Coordinate c;
      c.type = r.type;
      c.db_id1 = r.db_id1;
      c.db_id2 = r.db_id2;
      c.pivot_distance = r.pivot_distance;
      coords_.push_back(c);
    }
    Coordinate::Term term;
    term.lo = r.lo;
    term.hi = r.hi;
    term.alpha = r.alpha;
    coords_[it->second].terms.push_back(term);
  }
}

Vector QuerySensitiveEmbedding::Embed(const QueryDistanceFn& dx,
                                      size_t* num_exact) const {
  // Deduplicate exact-distance evaluations across coordinates; the same
  // reference object may appear in several coordinates (Sec. 7.1).
  std::unordered_map<uint32_t, double> dist_of;
  auto lookup = [&](uint32_t db_id) {
    auto it = dist_of.find(db_id);
    if (it != dist_of.end()) return it->second;
    double d = dx(db_id);
    dist_of.emplace(db_id, d);
    return d;
  };
  Vector out(coords_.size());
  for (size_t i = 0; i < coords_.size(); ++i) {
    const Coordinate& c = coords_[i];
    double d1 = lookup(c.db_id1);
    double d2 = c.type == Embedding1DSpec::Type::kPivot ? lookup(c.db_id2)
                                                        : 0.0;
    out[i] = c.Value(d1, d2);
  }
  if (num_exact != nullptr) *num_exact = dist_of.size();
  return out;
}

size_t QuerySensitiveEmbedding::EmbeddingCost() const {
  std::unordered_map<uint32_t, bool> seen;
  for (const Coordinate& c : coords_) {
    seen.emplace(c.db_id1, true);
    if (c.type == Embedding1DSpec::Type::kPivot) seen.emplace(c.db_id2, true);
  }
  return seen.size();
}

Vector QuerySensitiveEmbedding::QueryWeights(
    const Vector& embedded_query) const {
  assert(embedded_query.size() == coords_.size());
  Vector w(coords_.size());
  for (size_t i = 0; i < coords_.size(); ++i) {
    w[i] = coords_[i].Weight(embedded_query[i]);
  }
  return w;
}

double QuerySensitiveEmbedding::WeightedDistance(const Vector& weights,
                                                 const Vector& embedded_query,
                                                 const Vector& embedded_x) {
  assert(weights.size() == embedded_query.size());
  assert(weights.size() == embedded_x.size());
  double d = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    d += weights[i] * std::fabs(embedded_query[i] - embedded_x[i]);
  }
  return d;
}

double QuerySensitiveEmbedding::QuerySensitiveDistance(
    const Vector& embedded_query, const Vector& embedded_x) const {
  return WeightedDistance(QueryWeights(embedded_query), embedded_query,
                          embedded_x);
}

double QuerySensitiveEmbedding::TripleMargin(const Vector& fq,
                                             const Vector& fa,
                                             const Vector& fb) const {
  Vector w = QueryWeights(fq);
  return WeightedDistance(w, fq, fb) - WeightedDistance(w, fq, fa);
}

QuerySensitiveEmbedding QuerySensitiveEmbedding::Prefix(size_t j) const {
  QuerySensitiveEmbedding out;
  out.query_sensitive_ = query_sensitive_;
  size_t take = j < rounds_.size() ? j : rounds_.size();
  out.rounds_.assign(rounds_.begin(),
                     rounds_.begin() + static_cast<long>(take));
  out.RebuildCoordinates();
  return out;
}

Status QuerySensitiveEmbedding::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  BinaryWriter w(&out);
  w.WriteU32(kModelMagic);
  w.WriteU32(query_sensitive_ ? 1 : 0);
  w.WriteU64(rounds_.size());
  for (const StoredRound& r : rounds_) {
    w.WriteU32(r.type == Embedding1DSpec::Type::kReference ? 0 : 1);
    w.WriteU32(r.db_id1);
    w.WriteU32(r.db_id2);
    w.WriteDouble(r.pivot_distance);
    w.WriteDouble(r.lo);
    w.WriteDouble(r.hi);
    w.WriteDouble(r.alpha);
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<QuerySensitiveEmbedding> QuerySensitiveEmbedding::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("model file not found: " + path);
  BinaryReader r(&in);
  uint32_t magic = 0;
  QSE_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kModelMagic) {
    return Status::IOError("bad magic in model file: " + path);
  }
  uint32_t qs = 0;
  QSE_RETURN_IF_ERROR(r.ReadU32(&qs));
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&n));
  if (n > (1ull << 24)) return Status::IOError("round count implausible");
  QuerySensitiveEmbedding model;
  model.query_sensitive_ = qs != 0;
  model.rounds_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    StoredRound& sr = model.rounds_[i];
    uint32_t type = 0;
    QSE_RETURN_IF_ERROR(r.ReadU32(&type));
    sr.type = type == 0 ? Embedding1DSpec::Type::kReference
                        : Embedding1DSpec::Type::kPivot;
    QSE_RETURN_IF_ERROR(r.ReadU32(&sr.db_id1));
    QSE_RETURN_IF_ERROR(r.ReadU32(&sr.db_id2));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&sr.pivot_distance));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&sr.lo));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&sr.hi));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&sr.alpha));
  }
  model.RebuildCoordinates();
  return model;
}

}  // namespace qse
