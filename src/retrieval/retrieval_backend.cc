#include "src/retrieval/retrieval_backend.h"

namespace qse {

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kHigh:
      return "high";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kLow:
      return "low";
  }
  return "invalid";
}

Status ValidateRetrievalOptions(const RetrievalOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.p == 0) {
    return Status::InvalidArgument(
        "p must be >= 1: a filter step that keeps no candidates cannot "
        "retrieve anything");
  }
  if (static_cast<size_t>(options.priority) >= kNumPriorityLanes) {
    return Status::InvalidArgument(
        "invalid priority enumerator: " +
        std::to_string(static_cast<size_t>(options.priority)));
  }
  if (static_cast<size_t>(options.filter_precision) >=
      static_cast<size_t>(kNumFilterPrecisions)) {
    return Status::InvalidArgument(
        "invalid filter_precision enumerator: " +
        std::to_string(static_cast<size_t>(options.filter_precision)));
  }
  return Status::OK();
}

}  // namespace qse
