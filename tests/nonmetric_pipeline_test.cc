// End-to-end coverage on a genuinely NON-METRIC distance (Shape Context
// over synthetic digits) — the regime the paper targets.  The other
// integration tests run on the metric plane; these verify that nothing in
// the pipeline silently assumes the triangle inequality.
#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/data/digit_generator.h"
#include "src/matching/shape_context_distance.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/evaluation.h"
#include "src/retrieval/exact_knn.h"
#include "src/retrieval/filter_refine.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct DigitsBench {
  ObjectOracle<PointSet> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
};

DigitsBench MakeDigitsBench(size_t n_db, size_t n_query, uint64_t seed) {
  DigitGeneratorParams params;
  params.points_per_digit = 16;  // Small shapes keep the test fast.
  DigitGenerator gen(params, seed);
  std::vector<PointSet> shapes;
  for (auto& s : gen.Generate(n_db + n_query)) {
    shapes.push_back(std::move(s.shape));
  }
  ObjectOracle<PointSet> oracle(std::move(shapes),
                                [](const PointSet& a, const PointSet& b) {
                                  return ShapeContextDistance(a, b);
                                });
  return {std::move(oracle), test::Iota(n_db), test::Iota(n_query, n_db)};
}

BoostMapConfig SmallConfig() {
  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 800;
  config.k1 = 3;
  config.boost.rounds = 16;
  config.boost.embeddings_per_round = 12;
  config.boost.query_sensitive = true;
  return config;
}

TEST(NonMetricPipelineTest, Proposition1HoldsUnderShapeContext) {
  // H == F̃_out must hold regardless of DX's metric properties — the
  // proof of Proposition 1 never invokes the triangle inequality.
  DigitsBench b = MakeDigitsBench(60, 0, 1);
  std::vector<size_t> sample(b.db_ids.begin(), b.db_ids.begin() + 40);
  auto artifacts = TrainBoostMap(b.oracle, sample, sample, SmallConfig());
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();
  const QuerySensitiveEmbedding& model = artifacts->model;

  auto embed = [&](size_t id) {
    return model.Embed([&](size_t o) {
      return o == id ? 0.0 : b.oracle.Distance(id, o);
    });
  };
  // Margins via the embedding+distance formulation must rank triples
  // consistently with directly re-deriving D_out from the coordinates.
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    size_t q = rng.Index(60), x = rng.Index(60), y = rng.Index(60);
    if (q == x || q == y || x == y) continue;
    Vector fq = embed(q), fx = embed(x), fy = embed(y);
    Vector w = model.QueryWeights(fq);
    double manual = QuerySensitiveEmbedding::WeightedDistance(w, fq, fy) -
                    QuerySensitiveEmbedding::WeightedDistance(w, fq, fx);
    EXPECT_NEAR(model.TripleMargin(fq, fx, fy), manual, 1e-9);
  }
}

TEST(NonMetricPipelineTest, FilterRecallBeatsRandomFiltering) {
  DigitsBench b = MakeDigitsBench(120, 15, 3);
  std::vector<size_t> sample(b.db_ids.begin(), b.db_ids.begin() + 50);
  auto artifacts = TrainBoostMap(b.oracle, sample, sample, SmallConfig());
  ASSERT_TRUE(artifacts.ok());
  QseEmbedderAdapter embedder(&artifacts->model);
  QuerySensitiveScorer scorer(&artifacts->model);
  EmbeddedDatabase db = EmbedDatabase(embedder, b.oracle, b.db_ids);
  GroundTruth gt = ComputeGroundTruth(b.oracle, b.db_ids, b.query_ids, 1);
  LadderPoint point = EvaluateLadderPoint(embedder, scorer, db, b.oracle,
                                          b.db_ids, b.query_ids, gt, 0);
  // Random filtering would need p ~ n/2 on average to cover the true NN;
  // the embedding must do far better for most queries.
  size_t within_quarter = 0;
  for (const auto& req : point.required_p) {
    if (req[0] <= b.db_ids.size() / 4) ++within_quarter;
  }
  EXPECT_GE(within_quarter, b.query_ids.size() * 3 / 4);
}

TEST(NonMetricPipelineTest, RetrievalExactWhenPCoversDatabase) {
  // Even under a non-metric DX, p = n degenerates to brute force and the
  // results must match exact k-NN bit for bit.
  DigitsBench b = MakeDigitsBench(50, 5, 5);
  std::vector<size_t> sample(b.db_ids.begin(), b.db_ids.begin() + 30);
  auto artifacts = TrainBoostMap(b.oracle, sample, sample, SmallConfig());
  ASSERT_TRUE(artifacts.ok());
  QseEmbedderAdapter embedder(&artifacts->model);
  QuerySensitiveScorer scorer(&artifacts->model);
  EmbeddedDatabase db = EmbedDatabase(embedder, b.oracle, b.db_ids);
  RetrievalEngine retriever(&embedder, &scorer, &db, b.db_ids);
  for (size_t q : b.query_ids) {
    auto dx = [&](size_t id) { return b.oracle.Distance(q, id); };
    auto r = retriever.Retrieve({dx, RetrievalOptions(3, b.db_ids.size())});
    ASSERT_TRUE(r.ok()) << r.status();
    auto exact = ExactKnn(b.oracle, q, b.db_ids, 3);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(r->neighbors[i].index, exact[i].index);
    }
  }
}

TEST(NonMetricPipelineTest, AsymmetricDistanceIsAccepted) {
  // DX may be asymmetric (KL-style); the trainer must run and produce a
  // usable model without assuming DX(a,b) == DX(b,a).
  Rng rng(7);
  std::vector<Vector> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.Uniform(0.1, 1), rng.Uniform(0.1, 1)});
  }
  // Asymmetric toy distance: weighted by the first argument's mass.
  ObjectOracle<Vector> oracle(std::move(points),
                              [](const Vector& a, const Vector& b) {
                                double l1 = std::fabs(a[0] - b[0]) +
                                            std::fabs(a[1] - b[1]);
                                return l1 * (1.0 + a[0]);
                              });
  auto artifacts = TrainBoostMap(oracle, test::Iota(30), test::Iota(30),
                                 SmallConfig());
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();
  EXPECT_GT(artifacts->model.dims(), 0u);
}

}  // namespace
}  // namespace qse
