#!/usr/bin/env python3
"""Threshold check over micro_filter_step's JSON output.

Reads a google-benchmark JSON file and enforces relative performance
invariants between benchmarks from the same run.  Comparing within one
run sidesteps cross-machine noise: CI hosts vary wildly run to run, but
"the SoA scan must not be slower than the AoS scan it replaced" holds on
any host.  The raw JSON is uploaded as a CI artifact so absolute history
is still inspectable.

Usage: check_bench_regressions.py <benchmark_json> [--strict]

Exit code 1 when any rule fails.  --strict additionally fails when a
rule's benchmarks are missing from the JSON (CI uses it; local runs of a
benchmark subset stay usable without it).
"""

import argparse
import json
import os
import sys

# (numerator benchmark, denominator benchmark, max allowed ratio, label).
# Ratios are real_time(numerator) / real_time(denominator); a rule fails
# when the ratio exceeds the bound.
RULES = [
    # The flat SoA layout exists to beat the AoS scan it replaced; allow
    # 10% noise headroom.
    (
        "BM_FilterScanWeightedL1_SoA/100000/256",
        "BM_FilterScanWeightedL1_AoS/100000/256",
        1.10,
        "SoA filter scan vs AoS baseline (n=100k, d=256)",
    ),
    # Early abandon prunes work; it must never lose to the full scan by
    # more than noise.
    (
        "BM_ScoreTopP_EarlyAbandon/100000/256/500",
        "BM_ScoreTopP_FullScan/100000/256/500",
        1.10,
        "early-abandon top-p vs full scan + select (n=100k, d=256)",
    ),
    # One shard through the scatter/gather path must stay within 15% of
    # the monolithic engine: the merge + translation overhead is bounded.
    (
        "BM_RetrieveShardedSingleQuery/100000/256/1/real_time",
        "BM_RetrieveMonolithicSingleQuery/100000/256/real_time",
        1.15,
        "sharded S=1 overhead vs monolithic single query",
    ),
    # 8 shards must make ONE query faster, not slower — but the speedup
    # comes from scattering the scan across cores, so the enforceable
    # bound depends on the host.  sharded_speedup_bound() picks it.
    (
        "BM_RetrieveShardedSingleQuery/100000/256/8/real_time",
        "BM_RetrieveMonolithicSingleQuery/100000/256/real_time",
        None,
        "sharded S=8 single-query speedup vs monolithic",
    ),
]


def sharded_speedup_bound():
    """Max allowed time ratio for the sharded S=8 single-query config.

    On >= 4 cores (every GitHub-hosted runner) demand a real speedup:
    ratio <= 0.80, i.e. >= 1.25x — a lax regression guard under the
    1.5x the scatter typically measures there, so a throttled runner
    does not flap the build.  On 2-3 cores only demand "not slower".
    On one core the scatter runs serially and pays the weaker per-shard
    early-abandon threshold; allow its measured ~1.2x overhead.
    """
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 0.80
    if cores >= 2:
        return 1.00
    return 1.30


def load_times(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["real_time"])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark_json")
    parser.add_argument("--strict", action="store_true",
                        help="fail when a rule's benchmarks are missing")
    args = parser.parse_args()

    times = load_times(args.benchmark_json)
    failures = []
    for numerator, denominator, bound, label in RULES:
        if bound is None:
            bound = sharded_speedup_bound()
        if numerator not in times or denominator not in times:
            msg = f"MISSING  {label}: needs {numerator} and {denominator}"
            print(msg)
            if args.strict:
                failures.append(msg)
            continue
        ratio = times[numerator] / times[denominator]
        status = "FAIL" if ratio > bound else "ok"
        print(f"{status:7}  {label}: ratio {ratio:.3f} (bound {bound:.2f}, "
              f"speedup {1.0 / ratio:.2f}x)")
        if ratio > bound:
            failures.append(label)

    if failures:
        print(f"\n{len(failures)} benchmark threshold(s) violated:",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall benchmark thresholds satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
