#ifndef QSE_DISTANCE_SERIES_H_
#define QSE_DISTANCE_SERIES_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/util/logging.h"

namespace qse {

/// A multi-dimensional time series: `length` samples, each a point in
/// R^dims, stored point-major in one flat buffer.
///
/// Matches the data model of the paper's second testbed [32]:
/// multi-dimensional sequences of varying length, mean-normalized per
/// dimension before comparison.
class Series {
 public:
  Series() : dims_(1) {}
  Series(size_t dims, std::vector<double> values)
      : dims_(dims), values_(std::move(values)) {
    assert(dims_ > 0);
    assert(values_.size() % dims_ == 0);
  }

  /// Convenience constructor for 1-D series.
  static Series FromValues(std::vector<double> values) {
    return Series(1, std::move(values));
  }

  size_t dims() const { return dims_; }
  size_t length() const { return dims_ == 0 ? 0 : values_.size() / dims_; }
  bool empty() const { return values_.empty(); }

  // Bounds checks stay on in release builds: at() is not on the DTW hot
  // path (that uses raw row pointers), and a silent out-of-bounds read
  // here once corrupted a whole workload (see timeseries_generator.cc
  // warp normalization regression test).
  double at(size_t t, size_t d) const {
    QSE_CHECK(t < length() && d < dims_);
    return values_[t * dims_ + d];
  }
  double& at(size_t t, size_t d) {
    QSE_CHECK(t < length() && d < dims_);
    return values_[t * dims_ + d];
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Subtracts the per-dimension mean in place (the normalization applied
  /// to the paper's time-series dataset).
  void SubtractMean();

  /// Linear-interpolation resampling to `new_length` samples (per
  /// dimension).  Used to build the fixed-length variants required by
  /// LB_Keogh-style lower bounding.
  Series Resampled(size_t new_length) const;

 private:
  size_t dims_;
  std::vector<double> values_;
};

}  // namespace qse

#endif  // QSE_DISTANCE_SERIES_H_
