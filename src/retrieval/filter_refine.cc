#include "src/retrieval/filter_refine.h"

#include <cmath>

#include "src/distance/lp.h"
#include "src/util/logging.h"

namespace qse {

EmbeddedDatabase EmbedDatabase(const Embedder& embedder,
                               const DistanceOracle& oracle,
                               const std::vector<size_t>& db_ids) {
  EmbeddedDatabase db;
  db.rows.resize(db_ids.size());
  for (size_t i = 0; i < db_ids.size(); ++i) {
    size_t self = db_ids[i];
    db.rows[i] = embedder.Embed(
        [&](size_t other) {
          return self == other ? 0.0 : oracle.Distance(self, other);
        },
        nullptr);
  }
  return db;
}

void QuerySensitiveScorer::Score(const Vector& embedded_query,
                                 const EmbeddedDatabase& db,
                                 std::vector<double>* scores) const {
  Vector weights = model_->QueryWeights(embedded_query);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = QuerySensitiveEmbedding::WeightedDistance(
        weights, embedded_query, db.rows[i]);
  }
}

void L2Scorer::Score(const Vector& embedded_query, const EmbeddedDatabase& db,
                     std::vector<double>* scores) const {
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = SquaredL2Distance(embedded_query, db.rows[i]);
  }
}

void L1Scorer::Score(const Vector& embedded_query, const EmbeddedDatabase& db,
                     std::vector<double>* scores) const {
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = L1Distance(embedded_query, db.rows[i]);
  }
}

FilterRefineRetriever::FilterRefineRetriever(const Embedder* embedder,
                                             const FilterScorer* scorer,
                                             const EmbeddedDatabase* db,
                                             std::vector<size_t> db_ids)
    : embedder_(embedder),
      scorer_(scorer),
      db_(db),
      db_ids_(std::move(db_ids)) {
  QSE_CHECK(db_->size() == db_ids_.size());
}

RetrievalResult FilterRefineRetriever::Retrieve(const DxToDatabaseFn& dx,
                                                size_t k, size_t p) const {
  RetrievalResult result;
  // Embedding step.
  size_t embed_cost = 0;
  Vector fq = embedder_->Embed(dx, &embed_cost);
  result.embedding_distances = embed_cost;

  // Filter step: rank all database vectors, keep the top p.
  std::vector<double> scores;
  scorer_->Score(fq, *db_, &scores);
  if (p == 0) p = 1;
  std::vector<ScoredIndex> candidates = SmallestK(scores, p);

  // Refine step: exact distances on the p candidates only.
  std::vector<ScoredIndex> refined;
  refined.reserve(candidates.size());
  for (const ScoredIndex& c : candidates) {
    refined.push_back({c.index, dx(db_ids_[c.index])});
  }
  std::sort(refined.begin(), refined.end());
  if (refined.size() > k) refined.resize(k);
  result.neighbors = std::move(refined);
  result.exact_distances = embed_cost + candidates.size();
  return result;
}

}  // namespace qse
