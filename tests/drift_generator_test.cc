// Tests for the drifting distance oracle behind the SL_Drift scenarios:
// the DriftFactor schedule algebra, seed determinism, the step clock's
// effect on distances, and position/distance consistency.
#include "src/data/drift_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bench/drift_scenarios.h"

namespace qse {
namespace {

TEST(DriftFactorTest, NoneIsAlwaysZero) {
  DriftSchedule schedule;  // kNone
  for (size_t step : {0u, 1u, 100u, 100000u}) {
    EXPECT_EQ(DriftFactor(schedule, step), 0.0) << "step " << step;
  }
}

TEST(DriftFactorTest, AbruptStepsFromZeroToOneAtOnset) {
  DriftSchedule schedule = bench::AbruptDrift(/*onset=*/10);
  EXPECT_EQ(DriftFactor(schedule, 0), 0.0);
  EXPECT_EQ(DriftFactor(schedule, 9), 0.0);
  EXPECT_EQ(DriftFactor(schedule, 10), 1.0);
  EXPECT_EQ(DriftFactor(schedule, 1000), 1.0);
}

TEST(DriftFactorTest, GradualRampsLinearlyAndSaturates) {
  DriftSchedule schedule = bench::GradualDrift(/*onset=*/10, /*ramp=*/5);
  EXPECT_EQ(DriftFactor(schedule, 9), 0.0);
  EXPECT_DOUBLE_EQ(DriftFactor(schedule, 10), 0.2);
  EXPECT_DOUBLE_EQ(DriftFactor(schedule, 12), 0.6);
  EXPECT_DOUBLE_EQ(DriftFactor(schedule, 14), 1.0);
  EXPECT_DOUBLE_EQ(DriftFactor(schedule, 500), 1.0);
}

TEST(DriftFactorTest, RecurrentAlternatesDriftedAndCleanBlocks) {
  DriftSchedule schedule = bench::RecurrentDrift(/*onset=*/4, /*period=*/3);
  EXPECT_EQ(DriftFactor(schedule, 3), 0.0);  // pre-onset
  for (size_t s = 4; s < 7; ++s) EXPECT_EQ(DriftFactor(schedule, s), 1.0);
  for (size_t s = 7; s < 10; ++s) EXPECT_EQ(DriftFactor(schedule, s), 0.0);
  for (size_t s = 10; s < 13; ++s) EXPECT_EQ(DriftFactor(schedule, s), 1.0);
}

TEST(DriftingPointOracleTest, SameSeedIsDeterministic) {
  DriftingPointOracle a(20, 3, bench::AbruptDrift(5), 99);
  DriftingPointOracle b(20, 3, bench::AbruptDrift(5), 99);
  DriftingPointOracle c(20, 3, bench::AbruptDrift(5), 100);
  a.SetStep(7);
  b.SetStep(7);
  c.SetStep(7);
  bool any_differs = false;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      EXPECT_EQ(a.Distance(i, j), b.Distance(i, j)) << i << "," << j;
      if (a.Distance(i, j) != c.Distance(i, j)) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);  // a different seed is a different space
}

TEST(DriftingPointOracleTest, DistancesFrozenUntilOnsetThenChange) {
  DriftingPointOracle oracle(30, 2, bench::AbruptDrift(8, 0.35), 7);
  std::vector<double> at_zero;
  for (size_t i = 0; i < 30; ++i) at_zero.push_back(oracle.Distance(0, i));
  oracle.SetStep(7);  // last clean step
  EXPECT_EQ(oracle.CurrentDisplacement(), 0.0);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(oracle.Distance(0, i), at_zero[i]) << "i=" << i;
  }
  oracle.SetStep(8);  // onset
  EXPECT_DOUBLE_EQ(oracle.CurrentDisplacement(), 0.35);
  bool any_changed = false;
  for (size_t i = 1; i < 30; ++i) {
    if (oracle.Distance(0, i) != at_zero[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(DriftingPointOracleTest, MetricBasicsHoldWhileDrifted) {
  DriftingPointOracle oracle(25, 4, bench::AbruptDrift(0, 0.5), 21);
  oracle.SetStep(3);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(oracle.Distance(i, i), 0.0);
    for (size_t j = i + 1; j < 25; ++j) {
      EXPECT_EQ(oracle.Distance(i, j), oracle.Distance(j, i));
      EXPECT_GT(oracle.Distance(i, j), 0.0);
    }
  }
}

TEST(DriftingPointOracleTest, DistanceMatchesDisplacedPositions) {
  DriftingPointOracle oracle(10, 3, bench::GradualDrift(2, 10, 0.4), 5);
  oracle.SetStep(6);  // mid-ramp: factor 0.5, displacement 0.2
  EXPECT_DOUBLE_EQ(oracle.CurrentDisplacement(), 0.2);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      Vector pi = oracle.PositionAt(i);
      Vector pj = oracle.PositionAt(j);
      double sum = 0;
      for (size_t c = 0; c < pi.size(); ++c) {
        sum += (pi[c] - pj[c]) * (pi[c] - pj[c]);
      }
      EXPECT_NEAR(oracle.Distance(i, j), std::sqrt(sum), 1e-12);
    }
  }
}

TEST(DriftingPointOracleTest, RecurrentReturnsExactlyToBaseGeometry) {
  DriftingPointOracle oracle(15, 2, bench::RecurrentDrift(4, 4, 0.3), 3);
  std::vector<double> clean;
  for (size_t i = 0; i < 15; ++i) clean.push_back(oracle.Distance(1, i));
  oracle.SetStep(5);  // drifted block
  EXPECT_DOUBLE_EQ(oracle.CurrentDisplacement(), 0.3);
  oracle.SetStep(9);  // clean block: bit-identical to the base geometry
  EXPECT_EQ(oracle.CurrentDisplacement(), 0.0);
  for (size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(oracle.Distance(1, i), clean[i]) << "i=" << i;
  }
}

TEST(DriftingPointOracleTest, NamesAreStable) {
  EXPECT_STREQ(DriftKindName(DriftKind::kNone), "none");
  EXPECT_STREQ(DriftKindName(DriftKind::kAbrupt), "abrupt");
  EXPECT_STREQ(DriftKindName(DriftKind::kGradual), "gradual");
  EXPECT_STREQ(DriftKindName(DriftKind::kRecurrent), "recurrent");
}

}  // namespace
}  // namespace qse
