#include "src/retrieval/lb_index.h"

#include <gtest/gtest.h>

#include "src/data/timeseries_generator.h"
#include "src/util/top_k.h"

namespace qse {
namespace {

std::vector<Series> FixedLengthWorkload(size_t n, uint64_t seed) {
  TimeSeriesGeneratorParams params;
  params.num_seeds = 8;
  params.dims = 1;
  params.base_length = 48;
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, seed);
  return gen.Generate(n);
}

/// Brute-force exact cDTW scan for verification.
std::vector<ScoredIndex> BruteForce(const std::vector<Series>& db,
                                    const Series& query, size_t k,
                                    double band) {
  long window = static_cast<long>(
      std::ceil(band * static_cast<double>(query.length())));
  std::vector<double> scores(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    scores[i] = ConstrainedDtwWindow(query, db[i], window);
  }
  return SmallestK(scores, k);
}

TEST(LbDtwIndexTest, ReturnsExactNearestNeighbors) {
  auto db = FixedLengthWorkload(60, 1);
  auto queries = FixedLengthWorkload(8, 2);
  LbDtwIndex index(db, 0.1);
  for (const Series& q : queries) {
    auto result = index.Search(q, 3);
    auto truth = BruteForce(db, q, 3, 0.1);
    ASSERT_EQ(result.neighbors.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(result.neighbors[i].index, truth[i].index);
      EXPECT_DOUBLE_EQ(result.neighbors[i].score, truth[i].score);
    }
  }
}

TEST(LbDtwIndexTest, SearchBatchMatchesSingleSearch) {
  auto db = FixedLengthWorkload(60, 5);
  auto queries = FixedLengthWorkload(9, 6);
  LbDtwIndex index(db, 0.1);
  for (size_t threads : {1u, 2u, 4u}) {
    auto batch = index.SearchBatch(queries, 3, threads);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto single = index.Search(queries[qi], 3);
      ASSERT_EQ(batch[qi].neighbors.size(), single.neighbors.size());
      EXPECT_EQ(batch[qi].exact_evaluations, single.exact_evaluations);
      for (size_t i = 0; i < single.neighbors.size(); ++i) {
        EXPECT_EQ(batch[qi].neighbors[i].index, single.neighbors[i].index);
        EXPECT_EQ(batch[qi].neighbors[i].score, single.neighbors[i].score);
      }
    }
  }
}

TEST(LbDtwIndexTest, PrunesASubstantialFraction) {
  // The whole point of [32]-style lower bounding: far fewer exact DTW
  // evaluations than a sequential scan (the paper quotes ~5x for [32]).
  auto db = FixedLengthWorkload(200, 3);
  auto queries = FixedLengthWorkload(10, 4);
  LbDtwIndex index(db, 0.1);
  size_t total = 0;
  for (const Series& q : queries) {
    total += index.Search(q, 1).exact_evaluations;
  }
  double avg = static_cast<double>(total) / 10.0;
  EXPECT_LT(avg, 150.0);  // Meaningful pruning.
  EXPECT_GE(avg, 1.0);
}

TEST(LbDtwIndexTest, SelfQueryFindsItself) {
  auto db = FixedLengthWorkload(40, 5);
  LbDtwIndex index(db, 0.1);
  auto result = index.Search(db[7], 1);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_EQ(result.neighbors[0].index, 7u);
  EXPECT_DOUBLE_EQ(result.neighbors[0].score, 0.0);
}

TEST(LbDtwIndexTest, KClampedToDatabaseSize) {
  auto db = FixedLengthWorkload(5, 6);
  LbDtwIndex index(db, 0.1);
  auto result = index.Search(db[0], 50);
  EXPECT_EQ(result.neighbors.size(), 5u);
}

TEST(LbDtwIndexTest, ExactEvaluationsNeverExceedDatabase) {
  auto db = FixedLengthWorkload(50, 7);
  auto queries = FixedLengthWorkload(5, 8);
  LbDtwIndex index(db, 0.1);
  for (const Series& q : queries) {
    auto result = index.Search(q, 5);
    EXPECT_LE(result.exact_evaluations, db.size());
    EXPECT_GE(result.exact_evaluations, 5u);
  }
}

TEST(LbDtwIndexTest, WiderBandStillExact) {
  auto db = FixedLengthWorkload(60, 9);
  auto queries = FixedLengthWorkload(4, 10);
  for (double band : {0.05, 0.2}) {
    LbDtwIndex index(db, band);
    for (const Series& q : queries) {
      auto result = index.Search(q, 2);
      auto truth = BruteForce(db, q, 2, band);
      for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(result.neighbors[i].index, truth[i].index)
            << "band " << band;
      }
    }
  }
}

TEST(LbDtwIndexTest, MultiDimensionalExactness) {
  TimeSeriesGeneratorParams params;
  params.num_seeds = 6;
  params.dims = 3;
  params.base_length = 32;
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, 11);
  auto db = gen.Generate(40);
  auto queries = gen.Generate(4);
  LbDtwIndex index(db, 0.1);
  for (const Series& q : queries) {
    auto result = index.Search(q, 2);
    auto truth = BruteForce(db, q, 2, 0.1);
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(result.neighbors[i].index, truth[i].index);
    }
  }
}

}  // namespace
}  // namespace qse
