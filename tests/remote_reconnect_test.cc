// Kill-restart-reconnect tests for RemoteRetrievalBackend: a client must
// ride out a shard server restart (the durability story's "kill, recover
// from WAL, re-listen" sequence) without itself being restarted — both
// through a stale pooled connection (the send fails, the client redials
// and resends, safe pre-delivery for every op) and through dial-with-
// backoff while the server is still coming back up.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/remote_backend.h"
#include "src/net/retrieval_server.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "tests/line_universe.h"

namespace qse {
namespace net {
namespace {

using test::DxOfObject;
using test::kLineDims;
using test::LineEmbedder;
using test::MakeDx;
using test::XOf;

struct Stack {
  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db{kLineDims};
  RetrievalEngine engine{&embedder, &scorer, &db, {}};
};

TransportOptions FastTransport() {
  TransportOptions options;
  options.connect_timeout = std::chrono::milliseconds(1000);
  options.read_timeout = std::chrono::milliseconds(2000);
  options.write_timeout = std::chrono::milliseconds(2000);
  return options;
}

RetrievalServerOptions ServerOptions() {
  RetrievalServerOptions options;
  options.transport = FastTransport();
  return options;
}

RemoteBackendOptions ReconnectingClient() {
  RemoteBackendOptions options;
  options.transport = FastTransport();
  options.reconnect_attempts = 8;
  options.reconnect_backoff = std::chrono::milliseconds(10);
  return options;
}

void ExpectNearestIs(const RemoteRetrievalBackend& remote, size_t id,
                     const char* what) {
  StatusOr<RetrievalResponse> got =
      remote.Retrieve({MakeDx(XOf(id)), RetrievalOptions(1, 64)});
  ASSERT_TRUE(got.ok()) << what << ": " << got.status();
  ASSERT_EQ(1u, got->neighbors.size()) << what;
  EXPECT_EQ(id, got->neighbors[0].index) << what;
  EXPECT_EQ(0.0, got->neighbors[0].score) << what;
}

TEST(RemoteReconnect, KillRestartSamePortServesReadsAndMutations) {
  Stack stack;
  auto server = std::make_unique<RetrievalServer>(&stack.engine,
                                                  ServerOptions());
  ASSERT_TRUE(server->Start(0).ok());
  const uint16_t port = server->port();

  RemoteRetrievalBackend remote(&stack.embedder, "127.0.0.1", port,
                                ReconnectingClient());
  for (size_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(remote.Insert(id, DxOfObject(id)).ok());
  }
  ExpectNearestIs(remote, 3, "before restart");

  // Kill the server.  The client's pooled connection is now stale.
  server->Stop();
  server.reset();

  // "Recovered" server re-listens on the same port over the same engine
  // (in production this is the post-WAL-replay engine).
  auto restarted = std::make_unique<RetrievalServer>(&stack.engine,
                                                     ServerOptions());
  ASSERT_TRUE(restarted->Start(port).ok());

  // A MUTATION is the first call after the restart: it must ride the
  // stale-pool redial (send-path failure, nothing was delivered) rather
  // than surface kUnavailable.
  Status removed = remote.Remove(3);
  EXPECT_TRUE(removed.ok()) << removed;
  ASSERT_TRUE(remote.Insert(100, DxOfObject(100)).ok());
  ExpectNearestIs(remote, 100, "after restart");
  EXPECT_EQ(8u, remote.size());

  restarted->Stop();
}

TEST(RemoteReconnect, DialBackoffRidesOutServerDowntime) {
  Stack stack;
  for (size_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(stack.engine.Insert(id, DxOfObject(id)).ok());
  }
  // Grab a port, then take the server down before the client ever
  // connects: no pooled socket exists, so everything rides Dial().
  uint16_t port = 0;
  {
    RetrievalServer ephemeral(&stack.engine, ServerOptions());
    ASSERT_TRUE(ephemeral.Start(0).ok());
    port = ephemeral.port();
    ephemeral.Stop();
  }

  RemoteRetrievalBackend remote(&stack.embedder, "127.0.0.1", port,
                                ReconnectingClient());

  std::unique_ptr<RetrievalServer> late_server;
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    late_server = std::make_unique<RetrievalServer>(&stack.engine,
                                                    ServerOptions());
    ASSERT_TRUE(late_server->Start(port).ok());
  });

  // 8 attempts with 10ms doubling backoff cover far more than the 60ms
  // outage; both a read and a mutation must come through.
  ExpectNearestIs(remote, 5, "during staggered restart");
  ASSERT_TRUE(remote.Insert(50, DxOfObject(50)).ok());
  restarter.join();
  ExpectNearestIs(remote, 50, "after staggered restart");
  late_server->Stop();
}

TEST(RemoteReconnect, FailsFastWithSingleAttemptWhenServerIsDown) {
  Stack stack;
  uint16_t port = 0;
  {
    RetrievalServer ephemeral(&stack.engine, ServerOptions());
    ASSERT_TRUE(ephemeral.Start(0).ok());
    port = ephemeral.port();
    ephemeral.Stop();
  }
  RemoteBackendOptions options;
  options.transport = FastTransport();
  options.reconnect_attempts = 1;  // Dial once, fail fast.
  options.retry_reads = false;
  RemoteRetrievalBackend remote(&stack.embedder, "127.0.0.1", port, options);
  StatusOr<RetrievalResponse> got =
      remote.Retrieve({MakeDx(0.5), RetrievalOptions(1, 8)});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(StatusCode::kUnavailable, got.status().code());
}

}  // namespace
}  // namespace net
}  // namespace qse
