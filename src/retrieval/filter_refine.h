#ifndef QSE_RETRIEVAL_FILTER_REFINE_H_
#define QSE_RETRIEVAL_FILTER_REFINE_H_

#include <memory>
#include <vector>

#include "src/core/qs_embedding.h"
#include "src/data/dataset.h"
#include "src/embedding/embedder.h"
#include "src/util/top_k.h"

namespace qse {

/// The embedded database: one vector per database object, in db-position
/// order.  Computed once offline (the paper's "offline preprocessing step,
/// in which we compute and store vector F(x) for every database object").
struct EmbeddedDatabase {
  std::vector<Vector> rows;

  size_t size() const { return rows.size(); }
};

/// Embeds every database object with `embedder`.  The exact distances this
/// consumes are offline preprocessing, not part of the per-query cost.
EmbeddedDatabase EmbedDatabase(const Embedder& embedder,
                               const DistanceOracle& oracle,
                               const std::vector<size_t>& db_ids);

/// Scores an embedded query against every database row; the filter step's
/// ranking function.  Implementations: the query-sensitive D_out for
/// BoostMap models, plain L2 for FastMap, plain L1 for Lipschitz.
class FilterScorer {
 public:
  virtual ~FilterScorer() = default;

  /// Fills scores->at(i) with the filter distance of row i; lower = more
  /// similar.  `scores` is resized by the callee.
  virtual void Score(const Vector& embedded_query,
                     const EmbeddedDatabase& db,
                     std::vector<double>* scores) const = 0;
};

/// Weighted-L1 scorer with query-sensitive weights A_i(q) from a model
/// (Eq. 11).  Also serves query-insensitive models (constant weights).
class QuerySensitiveScorer : public FilterScorer {
 public:
  explicit QuerySensitiveScorer(const QuerySensitiveEmbedding* model)
      : model_(model) {}
  void Score(const Vector& embedded_query, const EmbeddedDatabase& db,
             std::vector<double>* scores) const override;

 private:
  const QuerySensitiveEmbedding* model_;
};

/// Unweighted L2 scorer (FastMap's native metric).
class L2Scorer : public FilterScorer {
 public:
  void Score(const Vector& embedded_query, const EmbeddedDatabase& db,
             std::vector<double>* scores) const override;
};

/// Unweighted L1 scorer (Lipschitz embeddings).
class L1Scorer : public FilterScorer {
 public:
  void Score(const Vector& embedded_query, const EmbeddedDatabase& db,
             std::vector<double>* scores) const override;
};

/// Result of one filter-and-refine retrieval.
struct RetrievalResult {
  /// Top-k neighbors by exact distance among the refined candidates;
  /// indices are db positions.
  std::vector<ScoredIndex> neighbors;
  /// Exact DX evaluations spent: embedding step + refine step.  This is
  /// the paper's per-query cost measure.
  size_t exact_distances = 0;
  /// Of which, spent embedding the query.
  size_t embedding_distances = 0;
};

/// The three-step retrieval pipeline of Sec. 8: embed the query, keep the
/// p most similar vectors (filter), re-rank those p by exact distance
/// (refine).
class FilterRefineRetriever {
 public:
  /// Does not own its arguments; `db_ids[i]` is the database id of row i
  /// of `db`.
  FilterRefineRetriever(const Embedder* embedder, const FilterScorer* scorer,
                        const EmbeddedDatabase* db,
                        std::vector<size_t> db_ids);

  /// Retrieves the k best matches among the top-p filter candidates.
  /// `dx` resolves exact distances from the query to database ids.
  RetrievalResult Retrieve(const DxToDatabaseFn& dx, size_t k,
                           size_t p) const;

 private:
  const Embedder* embedder_;
  const FilterScorer* scorer_;
  const EmbeddedDatabase* db_;
  std::vector<size_t> db_ids_;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_FILTER_REFINE_H_
