#ifndef QSE_CORE_TRAINING_CONTEXT_H_
#define QSE_CORE_TRAINING_CONTEXT_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/util/matrix.h"

namespace qse {

/// Precomputed distances that drive BoostMap training (Sec. 5.2): the
/// algorithm receives "a set C ⊂ X of candidate objects", "a matrix of
/// distances between any two objects in C, and a matrix of distances from
/// each c ∈ C to each qi, ai and bi appearing in one of the training
/// triples" — plus, to label triples and run the selective sampler of
/// Sec. 6, all pairwise distances within the training set Xtr.
///
/// Candidates and training objects are referenced by *local* indices in
/// [0, |C|) and [0, |Xtr|); the corresponding database ids are kept so the
/// final model can be applied to unseen queries.
class TrainingContext {
 public:
  /// Evaluates all required distance matrices through `oracle`.  This is
  /// the "one-time preprocessing cost" of Sec. 7 — quadratic in |C| and
  /// |Xtr|.
  static TrainingContext Build(const DistanceOracle& oracle,
                               std::vector<size_t> candidate_ids,
                               std::vector<size_t> train_ids);

  size_t num_candidates() const { return candidate_ids_.size(); }
  size_t num_train_objects() const { return train_ids_.size(); }

  /// DX between candidates c1 and c2 (local indices).
  double CandCand(size_t c1, size_t c2) const { return cand_cand_(c1, c2); }

  /// DX between candidate c and training object o (local indices).
  double CandTrain(size_t c, size_t o) const { return cand_train_(c, o); }

  /// DX between training objects o1 and o2 (local indices).
  double TrainTrain(size_t o1, size_t o2) const {
    return train_train_(o1, o2);
  }

  const Matrix& train_train_matrix() const { return train_train_; }

  const std::vector<size_t>& candidate_ids() const { return candidate_ids_; }
  const std::vector<size_t>& train_ids() const { return train_ids_; }

  /// Database id of candidate c (local index).
  size_t candidate_db_id(size_t c) const { return candidate_ids_[c]; }

 private:
  std::vector<size_t> candidate_ids_;  // Database ids of C.
  std::vector<size_t> train_ids_;      // Database ids of Xtr.
  Matrix cand_cand_;                   // |C| x |C|.
  Matrix cand_train_;                  // |C| x |Xtr|.
  Matrix train_train_;                 // |Xtr| x |Xtr|.
};

}  // namespace qse

#endif  // QSE_CORE_TRAINING_CONTEXT_H_
