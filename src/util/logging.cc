#include "src/util/logging.h"

#include <chrono>
#include <cstdio>

namespace qse {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "[FATAL] %s:%d: check failed: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

void LogLine(const char* level, const std::string& msg) {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  double secs = std::chrono::duration<double>(now).count();
  std::fprintf(stderr, "[%s %.3f] %s\n", level, secs, msg.c_str());
}

}  // namespace internal
}  // namespace qse
