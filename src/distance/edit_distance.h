#ifndef QSE_DISTANCE_EDIT_DISTANCE_H_
#define QSE_DISTANCE_EDIT_DISTANCE_H_

#include <string>

namespace qse {

/// Levenshtein edit distance (unit-cost insert / delete / substitute).
/// One of the expensive sequence distances the paper's introduction
/// motivates (matching strings and biological sequences); used by the
/// string-search example and tests.
size_t EditDistance(const std::string& a, const std::string& b);

/// Weighted edit distance with configurable operation costs.
/// Costs must be non-negative.  With all costs = 1 this equals
/// EditDistance.  Substituting a character by itself is free.
double WeightedEditDistance(const std::string& a, const std::string& b,
                            double insert_cost, double delete_cost,
                            double substitute_cost);

/// Banded edit distance: alignments are restricted to |i - j| <= band.
/// Returns an upper bound on the true distance (equal when band is large
/// enough, e.g. band >= |len(a) - len(b)| + true distance).
size_t BandedEditDistance(const std::string& a, const std::string& b,
                          size_t band);

}  // namespace qse

#endif  // QSE_DISTANCE_EDIT_DISTANCE_H_
