#include "src/retrieval/filter_scorer.h"

#include <algorithm>
#include <cmath>

#include "src/distance/lp.h"
#include "src/distance/weighted_l1.h"
#include "src/util/logging.h"

namespace qse {
namespace {

/// Dimensions per early-abandon check.  Large enough that the branch is
/// amortized over a cache line's worth of work, small enough that hopeless
/// rows are dropped after a fraction of a high-dimensional scan.  Must be
/// a multiple of 4 to preserve the lane discipline of the span kernels.
constexpr size_t kAbandonBlock = 64;

/// One streaming pass over the flat buffer keeping the p smallest rows.
/// `row_score(x, d, threshold)` scores one row with the scorer's kernel
/// and may stop early — returning any value strictly greater than
/// `threshold` — once its running partial sum provably exceeds it.
/// Partial sums are monotone non-decreasing (non-negative terms), so an
/// abandoned row's true score also exceeds the threshold and Offer()
/// rejects it; completed rows must return scores bit-identical to
/// Score()'s (same lane discipline as the span kernels, see lp.cc), and
/// BoundedTopK breaks ties by row index exactly like SmallestK.
template <typename RowScoreFn>
std::vector<ScoredIndex> TopPScan(const EmbeddedDatabase::View& db, size_t p,
                                  const RowScoreFn& row_score) {
  const size_t n = db.size();
  const size_t d = db.dims();
  BoundedTopK top(std::min(p, n));
  for (size_t i = 0; i < n; ++i) {
    top.Offer({i, row_score(db.row(i), d, top.threshold())});
  }
  return top.TakeSortedAscending();
}

/// Shared row kernel for the early-abandon scans: blocked 4-lane
/// accumulation of `term(x, i)` (the scorer's non-negative per-dimension
/// term) with an abandon check every kAbandonBlock dimensions.  One
/// definition keeps all three scorers on the exact lane discipline of the
/// span kernels (lp.cc / weighted_l1.cc) — the bit-identity contract with
/// Score() lives here, not in three hand-kept copies.  All accumulators
/// are locals, so after inlining the codegen matches the hand-rolled
/// version.
template <typename TermFn>
double RowScoreEarlyAbandon(const double* x, size_t d, double threshold,
                            const TermFn& term) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    size_t hi = i + kAbandonBlock;
    for (; i < hi; i += 4) {
      l0 += term(x, i);
      l1 += term(x, i + 1);
      l2 += term(x, i + 2);
      l3 += term(x, i + 3);
    }
    double partial = (l0 + l1) + (l2 + l3);
    if (partial > threshold) return partial;
  }
  for (; i + 4 <= d; i += 4) {
    l0 += term(x, i);
    l1 += term(x, i + 1);
    l2 += term(x, i + 2);
    l3 += term(x, i + 3);
  }
  for (; i < d; ++i) l0 += term(x, i);
  return (l0 + l1) + (l2 + l3);
}

}  // namespace

std::vector<ScoredIndex> FilterScorer::ScoreTopP(
    const Vector& embedded_query, const EmbeddedDatabase::View& db,
    size_t p) const {
  std::vector<double> scores;
  Score(embedded_query, db, &scores);
  return SmallestK(scores, p);
}

void QuerySensitiveScorer::ScoreWithWeights(const Vector& weights,
                                            const Vector& embedded_query,
                                            const EmbeddedDatabase::View& db,
                                            std::vector<double>* scores) {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = WeightedL1DistanceSpan(embedded_query.data(), db.row(i),
                                          weights.data(), d);
  }
}

void QuerySensitiveScorer::Score(const Vector& embedded_query,
                                 const EmbeddedDatabase::View& db,
                                 std::vector<double>* scores) const {
  ScoreWithWeights(model_->QueryWeights(embedded_query), embedded_query, db,
                   scores);
}

std::vector<ScoredIndex> QuerySensitiveScorer::ScoreTopP(
    const Vector& embedded_query, const EmbeddedDatabase::View& db,
    size_t p) const {
  Vector weights = model_->QueryWeights(embedded_query);
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  // A_i(q) sums AdaBoost alphas, which MinimizeZ may in principle drive
  // negative; early abandon is only exact for non-negative terms, so
  // verify once per query and fall back to the unpruned scan otherwise.
  bool nonnegative = true;
  for (double w : weights) {
    if (w < 0.0) {
      nonnegative = false;
      break;
    }
  }
  if (!nonnegative) {
    // Unpruned fallback, reusing the weights computed above instead of
    // paying a second A_i(q) evaluation inside Score().
    std::vector<double> scores;
    ScoreWithWeights(weights, embedded_query, db, &scores);
    return SmallestK(scores, p);
  }
  const double* q = embedded_query.data();
  const double* w = weights.data();
  return TopPScan(db, p, [q, w](const double* x, size_t d, double threshold) {
    return RowScoreEarlyAbandon(
        x, d, threshold, [q, w](const double* row, size_t i) {
          return w[i] * std::fabs(q[i] - row[i]);
        });
  });
}

void L2Scorer::Score(const Vector& embedded_query,
                     const EmbeddedDatabase::View& db,
                     std::vector<double>* scores) const {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = SquaredL2DistanceSpan(embedded_query.data(), db.row(i), d);
  }
}

std::vector<ScoredIndex> L2Scorer::ScoreTopP(const Vector& embedded_query,
                                             const EmbeddedDatabase::View& db,
                                             size_t p) const {
  QSE_CHECK(embedded_query.size() == db.dims());
  const double* q = embedded_query.data();
  return TopPScan(db, p, [q](const double* x, size_t d, double threshold) {
    return RowScoreEarlyAbandon(x, d, threshold,
                                [q](const double* row, size_t i) {
                                  double diff = q[i] - row[i];
                                  return diff * diff;
                                });
  });
}

void L1Scorer::Score(const Vector& embedded_query,
                     const EmbeddedDatabase::View& db,
                     std::vector<double>* scores) const {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = L1DistanceSpan(embedded_query.data(), db.row(i), d);
  }
}

std::vector<ScoredIndex> L1Scorer::ScoreTopP(const Vector& embedded_query,
                                             const EmbeddedDatabase::View& db,
                                             size_t p) const {
  QSE_CHECK(embedded_query.size() == db.dims());
  const double* q = embedded_query.data();
  return TopPScan(db, p, [q](const double* x, size_t d, double threshold) {
    return RowScoreEarlyAbandon(x, d, threshold,
                                [q](const double* row, size_t i) {
                                  return std::fabs(q[i] - row[i]);
                                });
  });
}

}  // namespace qse
