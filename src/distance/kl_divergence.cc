#include "src/distance/kl_divergence.h"

#include <cassert>
#include <cmath>

namespace qse {

namespace {

/// Normalizes a non-negative histogram with epsilon smoothing.
Vector NormalizeSmoothed(const Vector& p, double epsilon) {
  Vector out(p.size());
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    assert(p[i] >= 0.0);
    out[i] = p[i] + epsilon;
    total += out[i];
  }
  for (double& v : out) v /= total;
  return out;
}

}  // namespace

double KlDivergence(const Vector& p, const Vector& q, double epsilon) {
  assert(p.size() == q.size());
  assert(!p.empty());
  Vector pn = NormalizeSmoothed(p, epsilon);
  Vector qn = NormalizeSmoothed(q, epsilon);
  double kl = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    kl += pn[i] * std::log(pn[i] / qn[i]);
  }
  return kl < 0.0 ? 0.0 : kl;  // Guard tiny negative rounding artifacts.
}

double SymmetricKlDivergence(const Vector& p, const Vector& q,
                             double epsilon) {
  return KlDivergence(p, q, epsilon) + KlDivergence(q, p, epsilon);
}

double JensenShannonDivergence(const Vector& p, const Vector& q) {
  assert(p.size() == q.size());
  Vector pn = NormalizeSmoothed(p, 1e-12);
  Vector qn = NormalizeSmoothed(q, 1e-12);
  Vector m(p.size());
  for (size_t i = 0; i < m.size(); ++i) m[i] = 0.5 * (pn[i] + qn[i]);
  double js = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    if (pn[i] > 0) js += 0.5 * pn[i] * std::log(pn[i] / m[i]);
    if (qn[i] > 0) js += 0.5 * qn[i] * std::log(qn[i] / m[i]);
  }
  return js < 0.0 ? 0.0 : js;
}

}  // namespace qse
