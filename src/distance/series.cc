#include "src/distance/series.h"

#include <cmath>

namespace qse {

void Series::SubtractMean() {
  size_t n = length();
  if (n == 0) return;
  for (size_t d = 0; d < dims_; ++d) {
    double mean = 0.0;
    for (size_t t = 0; t < n; ++t) mean += at(t, d);
    mean /= static_cast<double>(n);
    for (size_t t = 0; t < n; ++t) at(t, d) -= mean;
  }
}

Series Series::Resampled(size_t new_length) const {
  assert(new_length > 0);
  size_t n = length();
  assert(n > 0);
  std::vector<double> out(new_length * dims_);
  for (size_t t = 0; t < new_length; ++t) {
    // Map t in [0, new_length-1] onto [0, n-1].
    double src = new_length == 1
                     ? 0.0
                     : static_cast<double>(t) * static_cast<double>(n - 1) /
                           static_cast<double>(new_length - 1);
    size_t lo = static_cast<size_t>(std::floor(src));
    size_t hi = lo + 1 < n ? lo + 1 : lo;
    double frac = src - static_cast<double>(lo);
    for (size_t d = 0; d < dims_; ++d) {
      out[t * dims_ + d] = (1.0 - frac) * at(lo, d) + frac * at(hi, d);
    }
  }
  return Series(dims_, std::move(out));
}

}  // namespace qse
