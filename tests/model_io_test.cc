// Serialization round-trips for the baseline embedding models (the core
// QuerySensitiveEmbedding round-trip lives in qs_embedding_test.cc).
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/embedding/fastmap.h"
#include "src/embedding/lipschitz.h"
#include "tests/test_util.h"

namespace qse {
namespace {

TEST(FastMapIoTest, SaveLoadRoundTrip) {
  auto oracle = test::MakePlaneOracle(50, 1);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(oracle, test::Iota(50), options);
  std::string path = testing::TempDir() + "/qse_fastmap_test.bin";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = FastMapModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dims(), model.dims());
  for (size_t q = 40; q < 50; ++q) {
    auto dx = [&](size_t id) {
      return id == q ? 0.0 : oracle.Distance(q, id);
    };
    Vector a = model.Embed(dx);
    Vector b = loaded->Embed(dx);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(FastMapIoTest, LoadMissingFails) {
  auto loaded = FastMapModel::Load("/nonexistent/fm.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(FastMapIoTest, LoadRejectsWrongMagic) {
  std::string path = testing::TempDir() + "/qse_fastmap_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a model";
  }
  auto loaded = FastMapModel::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(LipschitzIoTest, SaveLoadRoundTrip) {
  LipschitzOptions options;
  options.dims = 5;
  LipschitzModel model = BuildLipschitz(test::Iota(40), options);
  std::string path = testing::TempDir() + "/qse_lipschitz_test.bin";
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = LipschitzModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->sets(), model.sets());
  std::remove(path.c_str());
}

TEST(LipschitzIoTest, LoadMissingFails) {
  auto loaded = LipschitzModel::Load("/nonexistent/lp.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(LipschitzIoTest, LoadRejectsTruncated) {
  LipschitzOptions options;
  options.dims = 3;
  LipschitzModel model = BuildLipschitz(test::Iota(20), options);
  std::string path = testing::TempDir() + "/qse_lipschitz_trunc.bin";
  ASSERT_TRUE(model.Save(path).ok());
  // Truncate the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto loaded = LipschitzModel::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qse
