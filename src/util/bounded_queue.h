#ifndef QSE_UTIL_BOUNDED_QUEUE_H_
#define QSE_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace qse {

/// Why a non-blocking push was refused — decided under the queue lock,
/// so a caller can map "full" to load shedding and "closed" to shutdown
/// without racing a concurrent Close().
enum class QueuePushResult {
  kAccepted,
  kFull,
  kClosed,
};

/// Bounded blocking FIFO queue — the admission and dispatch primitive of
/// the async serving layer.  Safe for any number of producers and
/// consumers; the server uses it MPSC (many submitters, one batcher) and
/// SPMC (one batcher, many workers).
///
/// Close() makes the queue drainable-but-terminal: pushes fail, pops keep
/// returning queued items and then nullopt, and every blocked thread is
/// woken.  This is what makes graceful shutdown deterministic — nothing
/// queued is ever silently dropped.
///
/// Failed pushes do not consume the value: `v` is only moved from when
/// TryPush/Push return true, so the caller can still complete the
/// request's promise with an overload/shutdown status.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; false when full or closed.
  bool TryPush(T&& v) {
    return TryPushWithReason(std::move(v)) == QueuePushResult::kAccepted;
  }

  /// Non-blocking push that reports why it was refused.
  QueuePushResult TryPushWithReason(T&& v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return QueuePushResult::kClosed;
      if (items_.size() >= capacity_) return QueuePushResult::kFull;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return QueuePushResult::kAccepted;
  }

  /// Blocks until there is space or the queue closes; false when closed.
  bool Push(T&& v) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when momentarily empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    return PopLocked(&lock);
  }

  /// Blocks until an item arrives; nullopt only once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(&lock);
  }

  /// Blocks up to `timeout` (non-positive behaves like TryPop); nullopt on
  /// timeout or once closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    return PopLocked(&lock);
  }

  /// Rejects future pushes, lets pops drain, wakes all blocked threads.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Momentary number of queued items (the server's queue-depth stat).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopLocked(std::unique_lock<std::mutex>* lock) {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    lock->unlock();
    not_full_.notify_one();
    return v;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace qse

#endif  // QSE_UTIL_BOUNDED_QUEUE_H_
