#include "src/matching/shape_context.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/digit_generator.h"
#include "src/matching/shape_context_distance.h"
#include "src/util/random.h"

namespace qse {
namespace {

PointSet RandomShape(Rng* rng, size_t n) {
  PointSet ps;
  for (size_t i = 0; i < n; ++i) {
    ps.points.push_back({rng->Uniform(0, 1), rng->Uniform(0, 1)});
  }
  return ps;
}

TEST(ShapeContextTest, DescriptorDimensions) {
  Rng rng(1);
  PointSet ps = RandomShape(&rng, 12);
  ShapeContextParams params;
  auto desc = ComputeShapeContexts(ps, params);
  ASSERT_EQ(desc.size(), 12u);
  for (const Vector& h : desc) {
    EXPECT_EQ(h.size(), params.descriptor_size());
  }
}

TEST(ShapeContextTest, HistogramsAreNormalized) {
  Rng rng(2);
  PointSet ps = RandomShape(&rng, 20);
  auto desc = ComputeShapeContexts(ps, {});
  for (const Vector& h : desc) {
    double sum = 0.0;
    for (double v : h) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ShapeContextTest, TranslationInvariant) {
  Rng rng(3);
  PointSet ps = RandomShape(&rng, 15);
  PointSet shifted = ps;
  for (Point2& p : shifted.points) {
    p.x += 17.0;
    p.y -= 4.0;
  }
  auto d1 = ComputeShapeContexts(ps, {});
  auto d2 = ComputeShapeContexts(shifted, {});
  for (size_t i = 0; i < d1.size(); ++i) {
    for (size_t k = 0; k < d1[i].size(); ++k) {
      EXPECT_NEAR(d1[i][k], d2[i][k], 1e-9);
    }
  }
}

TEST(ShapeContextTest, ScaleInvariant) {
  Rng rng(4);
  PointSet ps = RandomShape(&rng, 15);
  PointSet scaled = ps;
  for (Point2& p : scaled.points) {
    p.x *= 42.0;
    p.y *= 42.0;
  }
  auto d1 = ComputeShapeContexts(ps, {});
  auto d2 = ComputeShapeContexts(scaled, {});
  for (size_t i = 0; i < d1.size(); ++i) {
    for (size_t k = 0; k < d1[i].size(); ++k) {
      EXPECT_NEAR(d1[i][k], d2[i][k], 1e-9);
    }
  }
}

TEST(ShapeContextTest, ChiSquareBasics) {
  Vector a = {0.5, 0.5, 0.0};
  Vector b = {0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(ChiSquareCost(a, a), 0.0);
  EXPECT_GT(ChiSquareCost(a, b), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareCost(a, b), ChiSquareCost(b, a));
  // Bounded by 1 for normalized histograms.
  Vector c = {1.0, 0.0, 0.0}, d = {0.0, 0.0, 1.0};
  EXPECT_LE(ChiSquareCost(c, d), 1.0 + 1e-12);
}

TEST(ShapeContextTest, CostMatrixShape) {
  Rng rng(5);
  auto da = ComputeShapeContexts(RandomShape(&rng, 6), {});
  auto db = ComputeShapeContexts(RandomShape(&rng, 9), {});
  Matrix m = ShapeContextCostMatrix(da, db);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 9u);
}

TEST(ShapeContextDistanceTest, SelfDistanceIsZero) {
  Rng rng(6);
  PointSet ps = RandomShape(&rng, 16);
  EXPECT_NEAR(ShapeContextDistance(ps, ps), 0.0, 1e-9);
}

TEST(ShapeContextDistanceTest, ApproximatelySymmetric) {
  // The matching term is direction-independent for equal sizes, but the
  // least-squares alignment residual is fit in one direction, so the
  // distance is only approximately symmetric (like the paper's SC
  // distance, whose alignment terms are also directional).
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    PointSet a = RandomShape(&rng, 16);
    PointSet b = RandomShape(&rng, 16);
    double ab = ShapeContextDistance(a, b);
    double ba = ShapeContextDistance(b, a);
    EXPECT_NEAR(ab, ba, 0.05 * (ab + ba));
  }
}

TEST(ShapeContextDistanceTest, GrowsWithPerturbation) {
  DigitGeneratorParams params;
  DigitGenerator gen(params, 42);
  PointSet base = DigitGenerator::Template(3, 24);
  Rng rng(8);
  double prev = 0.0;
  for (double noise : {0.01, 0.05, 0.15}) {
    PointSet perturbed = base;
    Rng local(99);
    for (Point2& p : perturbed.points) {
      p.x += local.Gaussian(0, noise);
      p.y += local.Gaussian(0, noise);
    }
    double d = ShapeContextDistance(base, perturbed);
    EXPECT_GE(d, prev - 0.02) << "noise " << noise;
    prev = d;
  }
  EXPECT_GT(prev, 0.05);
}

TEST(ShapeContextDistanceTest, DifferentDigitsFartherThanSameDigit) {
  // Core sanity for the MNIST substitute: intra-class SC distance should
  // usually be below inter-class distance.
  DigitGeneratorParams params;
  DigitGenerator gen(params, 17);
  double intra = 0.0, inter = 0.0;
  int n = 8;
  for (int i = 0; i < n; ++i) {
    PointSet a = gen.SampleDigit(2).shape;
    PointSet b = gen.SampleDigit(2).shape;
    PointSet c = gen.SampleDigit(7).shape;
    intra += ShapeContextDistance(a, b);
    inter += ShapeContextDistance(a, c);
  }
  EXPECT_LT(intra, inter);
}

TEST(ShapeContextDistanceTest, DetailedTermsAddUp) {
  Rng rng(9);
  PointSet a = RandomShape(&rng, 12);
  PointSet b = RandomShape(&rng, 12);
  ShapeContextDistanceParams params;
  params.alignment_weight = 2.0;
  ShapeContextDistanceResult r = ShapeContextDistanceDetailed(a, b, params);
  EXPECT_NEAR(r.total, r.matching_cost + 2.0 * r.alignment_cost, 1e-12);
  EXPECT_GE(r.matching_cost, 0.0);
  EXPECT_GE(r.alignment_cost, 0.0);
}

TEST(ShapeContextDistanceTest, UnequalSizesMatchSmallerIntoLarger) {
  Rng rng(10);
  PointSet small = RandomShape(&rng, 8);
  PointSet large = RandomShape(&rng, 20);
  double d = ShapeContextDistance(small, large);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 0.0);
}

TEST(ShapeContextDistanceTest, RotationInvariantUnderAlignmentTerm) {
  // A rigid rotation should cost little: descriptors rotate (they are not
  // rotation-invariant) but the alignment residual stays ~0.
  PointSet base = DigitGenerator::Template(0, 24);
  PointSet rotated = base;
  double theta = 10.0 * M_PI / 180.0;
  for (Point2& p : rotated.points) {
    double x = p.x - 0.5, y = p.y - 0.5;
    p = {std::cos(theta) * x - std::sin(theta) * y + 0.5,
         std::sin(theta) * x + std::cos(theta) * y + 0.5};
  }
  ShapeContextDistanceResult r = ShapeContextDistanceDetailed(base, rotated);
  // Residual stays small relative to the unit shape scale; it is nonzero
  // only because a few descriptor matches flip under rotation.
  EXPECT_LT(r.alignment_cost, 0.15);
}

TEST(ShapeContextDistanceTest, NonMetricTriangleViolationOccurs) {
  // The paper's premise is that SC distance is non-metric.  Violations
  // are rare among well-separated shapes, so scan variable-size random
  // point clouds (where descriptor context shifts are largest) over a
  // deterministic sequence of seeds until one is found.
  bool violated = false;
  for (uint64_t seed = 1; seed <= 10 && !violated; ++seed) {
    Rng rng(seed);
    std::vector<PointSet> shapes;
    for (int i = 0; i < 20; ++i) {
      size_t n = 6 + rng.Index(9);
      shapes.push_back(RandomShape(&rng, n));
    }
    const size_t m = shapes.size();
    Matrix d(m, m);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        d(i, j) = i == j ? 0.0 : ShapeContextDistance(shapes[i], shapes[j]);
      }
    }
    for (size_t x = 0; x < m && !violated; ++x) {
      for (size_t y = 0; y < m && !violated; ++y) {
        for (size_t z = 0; z < m && !violated; ++z) {
          if (x == y || y == z || x == z) continue;
          if (d(x, z) > d(x, y) + d(y, z) + 1e-9) violated = true;
        }
      }
    }
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace qse
