#ifndef QSE_RETRIEVAL_EMBEDDER_ADAPTERS_H_
#define QSE_RETRIEVAL_EMBEDDER_ADAPTERS_H_

#include "src/core/qs_embedding.h"
#include "src/embedding/embedder.h"

namespace qse {

/// Presents a trained QuerySensitiveEmbedding through the shared Embedder
/// interface so the retrieval pipeline and the evaluation protocol can
/// treat BoostMap variants and the baseline methods uniformly.  Does not
/// own the model.
class QseEmbedderAdapter : public Embedder {
 public:
  explicit QseEmbedderAdapter(const QuerySensitiveEmbedding* model)
      : model_(model) {}

  size_t dims() const override { return model_->dims(); }

  Vector Embed(const DxToDatabaseFn& dx,
               size_t* num_exact = nullptr) const override {
    return model_->Embed(dx, num_exact);
  }

  size_t EmbeddingCost() const override { return model_->EmbeddingCost(); }

  const QuerySensitiveEmbedding* model() const { return model_; }

 private:
  const QuerySensitiveEmbedding* model_;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_EMBEDDER_ADAPTERS_H_
