// Ablation benches for the design choices DESIGN.md calls out:
//
//  (a) k1 sensitivity (Sec. 6): the selective sampler's near-neighbor cut.
//      The paper derives k1 from kmax * |Xtr| / |db|; this sweep shows the
//      cost at k = 10 / 95% accuracy as k1 varies.
//  (b) 1D embedding family (Sec. 5.3): reference-only vs pivot-only vs
//      the mixed pool used by BoostMap.
//  (c) Training budget: boosting rounds J (the dimensionality budget).
//  (d) Candidate pool size |C| (Sec. 7 discusses the |C|^2 preprocessing
//      trade-off; Fig. 6 is the extreme version of this sweep).
//
// All sweeps run Se-QS on the digits workload.
#include <cstdio>

#include "bench/harness.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace qse {
namespace {

size_t CostOf(const bench::MethodLadder& m, size_t db, size_t k,
              double pct) {
  return OptimalCost(m.ladder, k, pct, db);
}

}  // namespace
}  // namespace qse

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);

  bench::WorkloadScale wscale;
  wscale.db_size = flags.GetSize("db", 800);
  wscale.num_queries = flags.GetSize("queries", 80);
  wscale.seed = flags.GetSize("seed", 2005);

  bench::TrainingScale base;
  base.num_cand = flags.GetSize("cand", 150);
  base.num_train = flags.GetSize("train", 150);
  base.num_triples = flags.GetSize("triples", 6000);
  base.rounds = flags.GetSize("rounds", 48);
  base.embeddings_per_round = flags.GetSize("epr", 32);
  base.k1 = 5;
  base.seed = flags.GetSize("train_seed", 7);

  const size_t kmax = 20;
  const size_t report_k = 10;
  const double report_pct = 0.95;

  bench::Workload workload = bench::MakeDigitsWorkload(wscale);
  GroundTruth gt = bench::ComputeWorkloadGroundTruth(workload, kmax);
  workload.SaveCache();
  const size_t n = workload.db_ids.size();

  // (a) k1 sweep.
  {
    Table table({"k1", "cost_k10_95pct"});
    for (size_t k1 : {1u, 3u, 5u, 9u, 15u, 30u}) {
      bench::TrainingScale scale = base;
      scale.k1 = k1;
      auto m = bench::RunBoostMapVariant(workload, gt,
                                         "Se-QS k1=" + std::to_string(k1),
                                         TripleSampling::kSelective, true,
                                         scale);
      table.AddRow({Table::Fmt(k1),
                    Table::Fmt(CostOf(m, n, report_k, report_pct))});
    }
    std::printf("\nAblation (a): k1 sensitivity (Se-QS, digits)\n%s",
                table.ToPretty().c_str());
    (void)table.WriteCsv(bench::ResultsPath("ablation_k1"));
  }

  // (b) 1D embedding family: pivot_fraction in {0, 0.5, 1}.
  {
    Table table({"pivot_fraction", "cost_k10_95pct"});
    for (double pf : {0.0, 0.5, 1.0}) {
      bench::TrainingScale scale = base;
      BoostMapConfig config;  // Build manually to set pivot_fraction.
      config.sampling = TripleSampling::kSelective;
      config.num_triples = scale.num_triples;
      config.k1 = scale.k1;
      config.sampling_seed = scale.seed + 13;
      config.boost.rounds = scale.rounds;
      config.boost.embeddings_per_round = scale.embeddings_per_round;
      config.boost.query_sensitive = true;
      config.boost.pivot_fraction = pf;
      config.boost.seed = scale.seed + 29;
      Rng rng(scale.seed + 1);
      auto picks = rng.SampleWithoutReplacement(workload.db_ids.size(),
                                                scale.num_cand);
      std::vector<size_t> cand;
      for (size_t p : picks) cand.push_back(workload.db_ids[p]);
      auto artifacts =
          TrainBoostMap(*workload.oracle, cand, cand, config);
      QSE_CHECK(artifacts.ok());
      bench::MethodLadder m;
      m.name = "pf=" + Table::Fmt(pf);
      QuerySensitiveScorer scorer(&artifacts->model);
      for (size_t j : bench::DoublingLadder(artifacts->model.num_rounds())) {
        QuerySensitiveEmbedding prefix = artifacts->model.Prefix(j);
        QseEmbedderAdapter adapter(&prefix);
        QuerySensitiveScorer prefix_scorer(&prefix);
        EmbeddedDatabase db =
            EmbedDatabase(adapter, *workload.oracle, workload.db_ids);
        m.ladder.push_back(EvaluateLadderPoint(
            adapter, prefix_scorer, db, *workload.oracle, workload.db_ids,
            workload.query_ids, gt, j));
      }
      table.AddRow({Table::Fmt(pf),
                    Table::Fmt(CostOf(m, n, report_k, report_pct))});
    }
    std::printf(
        "\nAblation (b): 1D embedding family (0 = references only, 1 = "
        "pivots only)\n%s",
        table.ToPretty().c_str());
    (void)table.WriteCsv(bench::ResultsPath("ablation_pivot_fraction"));
  }

  // (c) Rounds sweep.
  {
    Table table({"rounds", "cost_k10_95pct"});
    for (size_t rounds : {8u, 16u, 32u, 64u}) {
      bench::TrainingScale scale = base;
      scale.rounds = rounds;
      auto m = bench::RunBoostMapVariant(
          workload, gt, "Se-QS J=" + std::to_string(rounds),
          TripleSampling::kSelective, true, scale);
      table.AddRow({Table::Fmt(rounds),
                    Table::Fmt(CostOf(m, n, report_k, report_pct))});
    }
    std::printf("\nAblation (c): boosting rounds J\n%s",
                table.ToPretty().c_str());
    (void)table.WriteCsv(bench::ResultsPath("ablation_rounds"));
  }

  // (d) Candidate pool size.
  {
    Table table({"num_cand", "cost_k10_95pct"});
    for (size_t nc : {40u, 80u, 150u}) {
      bench::TrainingScale scale = base;
      scale.num_cand = nc;
      scale.num_train = nc;
      scale.k1 = std::min<size_t>(5, nc / 8);
      auto m = bench::RunBoostMapVariant(
          workload, gt, "Se-QS |C|=" + std::to_string(nc),
          TripleSampling::kSelective, true, scale);
      table.AddRow({Table::Fmt(nc),
                    Table::Fmt(CostOf(m, n, report_k, report_pct))});
    }
    std::printf("\nAblation (d): candidate pool size |C| = |Xtr|\n%s",
                table.ToPretty().c_str());
    (void)table.WriteCsv(bench::ResultsPath("ablation_candidates"));
  }

  workload.SaveCache();
  return 0;
}
