#include "src/core/qs_embedding.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/triple_sampler.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct Trained {
  ObjectOracle<Vector> oracle;
  TrainingContext ctx;
  std::vector<Triple> triples;
  AdaBoostResult boost;
  QuerySensitiveEmbedding model;
};

Trained TrainSmallModel(bool query_sensitive, uint64_t seed,
                        size_t rounds = 20) {
  auto oracle = test::MakePlaneOracle(50, seed);
  TrainingContext ctx =
      TrainingContext::Build(oracle, test::Iota(15), test::Iota(35, 15));
  Rng rng(seed + 1);
  auto triples = SampleRandomTriples(ctx.train_train_matrix(), 600, &rng);
  AdaBoostOptions options;
  options.rounds = rounds;
  options.embeddings_per_round = 12;
  options.query_sensitive = query_sensitive;
  options.seed = seed + 2;
  AdaBoostResult boost = TrainAdaBoost(ctx, triples, options);
  QuerySensitiveEmbedding model =
      QuerySensitiveEmbedding::FromTraining(ctx, boost.rounds,
                                            query_sensitive);
  return {std::move(oracle), std::move(ctx), std::move(triples),
          std::move(boost), std::move(model)};
}

/// Embeds training object `o` of `t` through the oracle.
Vector EmbedTrainObject(const Trained& t, size_t o) {
  size_t db_id = t.ctx.train_ids()[o];
  return t.model.Embed([&](size_t other) {
    return db_id == other ? 0.0 : t.oracle.Distance(db_id, other);
  });
}

/// Direct evaluation of the boosted ensemble H(q,a,b) from the weak
/// classifiers (Eq. 9), for comparison against the embedding+distance
/// formulation.
double EnsembleH(const Trained& t, size_t q, size_t a, size_t b) {
  double h = 0.0;
  std::vector<double> values(t.ctx.num_train_objects());
  for (const WeakClassifier& wc : t.boost.rounds) {
    Eval1DOnAllTrainObjects(wc.spec, t.ctx, values.data());
    h += wc.alpha * wc.Evaluate(values[q], values[a], values[b]);
  }
  return h;
}

TEST(QsEmbeddingTest, Proposition1EquivalenceQuerySensitive) {
  // The paper's central identity (Proposition 1): the classifier induced
  // by (F_out, D_out) equals the AdaBoost ensemble H.
  Trained t = TrainSmallModel(/*query_sensitive=*/true, 100);
  ASSERT_GT(t.model.dims(), 0u);
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    size_t q = rng.Index(35), a = rng.Index(35), b = rng.Index(35);
    if (q == a || q == b || a == b) continue;
    Vector fq = EmbedTrainObject(t, q);
    Vector fa = EmbedTrainObject(t, a);
    Vector fb = EmbedTrainObject(t, b);
    double margin = t.model.TripleMargin(fq, fa, fb);
    double h = EnsembleH(t, q, a, b);
    EXPECT_NEAR(margin, h, 1e-9 * (1.0 + std::fabs(h)))
        << "triple (" << q << "," << a << "," << b << ")";
  }
}

TEST(QsEmbeddingTest, Proposition1EquivalenceQueryInsensitive) {
  Trained t = TrainSmallModel(/*query_sensitive=*/false, 101);
  Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    size_t q = rng.Index(35), a = rng.Index(35), b = rng.Index(35);
    if (q == a || q == b || a == b) continue;
    Vector fq = EmbedTrainObject(t, q);
    Vector fa = EmbedTrainObject(t, a);
    Vector fb = EmbedTrainObject(t, b);
    EXPECT_NEAR(t.model.TripleMargin(fq, fa, fb), EnsembleH(t, q, a, b),
                1e-9);
  }
}

TEST(QsEmbeddingTest, DimsIsNumberOfUniqueEmbeddings) {
  Trained t = TrainSmallModel(true, 102);
  EXPECT_LE(t.model.dims(), t.model.num_rounds());
  EXPECT_GT(t.model.dims(), 0u);
  size_t total_terms = 0;
  for (const auto& coord : t.model.coordinates()) {
    total_terms += coord.terms.size();
  }
  EXPECT_EQ(total_terms, t.model.num_rounds());
}

TEST(QsEmbeddingTest, QueryInsensitiveWeightsAreConstant) {
  Trained t = TrainSmallModel(false, 103);
  Rng rng(9);
  Vector w_first;
  for (int trial = 0; trial < 10; ++trial) {
    Vector fq = EmbedTrainObject(t, rng.Index(35));
    Vector w = t.model.QueryWeights(fq);
    if (trial == 0) {
      w_first = w;
    } else {
      for (size_t i = 0; i < w.size(); ++i) {
        EXPECT_DOUBLE_EQ(w[i], w_first[i]);
      }
    }
  }
}

TEST(QsEmbeddingTest, QuerySensitiveWeightsVaryAcrossQueries) {
  Trained t = TrainSmallModel(true, 104, 30);
  Rng rng(10);
  bool varied = false;
  Vector w_first;
  for (int trial = 0; trial < 20 && !varied; ++trial) {
    Vector fq = EmbedTrainObject(t, rng.Index(35));
    Vector w = t.model.QueryWeights(fq);
    if (trial == 0) {
      w_first = w;
    } else {
      for (size_t i = 0; i < w.size(); ++i) {
        if (w[i] != w_first[i]) varied = true;
      }
    }
  }
  EXPECT_TRUE(varied);
}

TEST(QsEmbeddingTest, EmbeddingCostAtMostTwoPerCoordinate) {
  Trained t = TrainSmallModel(true, 105);
  EXPECT_LE(t.model.EmbeddingCost(), 2 * t.model.dims());
  EXPECT_GE(t.model.EmbeddingCost(), 1u);
}

TEST(QsEmbeddingTest, EmbedReportsUniqueExactDistances) {
  Trained t = TrainSmallModel(true, 106);
  size_t count = 0;
  size_t calls = 0;
  size_t db_id = t.ctx.train_ids()[0];
  t.model.Embed(
      [&](size_t other) {
        ++calls;
        return t.oracle.Distance(db_id, other);
      },
      &count);
  EXPECT_EQ(count, calls);  // The model deduplicates internally.
  EXPECT_EQ(count, t.model.EmbeddingCost());
}

TEST(QsEmbeddingTest, PrefixReducesRoundsAndDims) {
  Trained t = TrainSmallModel(true, 107, 24);
  ASSERT_GE(t.model.num_rounds(), 8u);
  QuerySensitiveEmbedding p4 = t.model.Prefix(4);
  EXPECT_EQ(p4.num_rounds(), 4u);
  EXPECT_LE(p4.dims(), 4u);
  QuerySensitiveEmbedding huge = t.model.Prefix(10000);
  EXPECT_EQ(huge.num_rounds(), t.model.num_rounds());
}

TEST(QsEmbeddingTest, PrefixMatchesRetrainedEquivalence) {
  // The prefix model's margins must equal the partial ensemble's margins.
  Trained t = TrainSmallModel(true, 108, 16);
  size_t j = 5;
  QuerySensitiveEmbedding prefix = t.model.Prefix(j);
  Trained partial = t;  // Copy; reuse oracle/ctx.
  partial.boost.rounds.resize(j);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    size_t q = rng.Index(35), a = rng.Index(35), b = rng.Index(35);
    if (q == a || q == b || a == b) continue;
    auto embed = [&](size_t o) {
      size_t db_id = partial.ctx.train_ids()[o];
      return prefix.Embed([&](size_t other) {
        return db_id == other ? 0.0 : partial.oracle.Distance(db_id, other);
      });
    };
    EXPECT_NEAR(prefix.TripleMargin(embed(q), embed(a), embed(b)),
                EnsembleH(partial, q, a, b), 1e-9);
  }
}

TEST(QsEmbeddingTest, SaveLoadRoundTrip) {
  Trained t = TrainSmallModel(true, 109);
  std::string path = testing::TempDir() + "/qse_model_test.bin";
  ASSERT_TRUE(t.model.Save(path).ok());
  auto loaded = QuerySensitiveEmbedding::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dims(), t.model.dims());
  EXPECT_EQ(loaded->num_rounds(), t.model.num_rounds());
  EXPECT_EQ(loaded->query_sensitive(), t.model.query_sensitive());
  // Same embedding values.
  size_t db_id = t.ctx.train_ids()[3];
  auto dx = [&](size_t other) {
    return db_id == other ? 0.0 : t.oracle.Distance(db_id, other);
  };
  Vector a = t.model.Embed(dx);
  Vector b = loaded->Embed(dx);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(QsEmbeddingTest, LoadMissingFileFails) {
  auto loaded = QuerySensitiveEmbedding::Load("/nonexistent/model.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(QsEmbeddingTest, DistanceIsNonNegativeWithPositiveAlphas) {
  Trained t = TrainSmallModel(true, 110);
  bool all_alpha_positive = true;
  for (const auto& coord : t.model.coordinates()) {
    for (const auto& term : coord.terms) {
      if (term.alpha < 0) all_alpha_positive = false;
    }
  }
  if (all_alpha_positive) {
    Rng rng(12);
    for (int trial = 0; trial < 10; ++trial) {
      Vector fq = EmbedTrainObject(t, rng.Index(35));
      Vector fx = EmbedTrainObject(t, rng.Index(35));
      EXPECT_GE(t.model.QuerySensitiveDistance(fq, fx), 0.0);
    }
  }
}

TEST(QsEmbeddingTest, SelfDistanceIsZero) {
  Trained t = TrainSmallModel(true, 111);
  Vector fq = EmbedTrainObject(t, 5);
  EXPECT_DOUBLE_EQ(t.model.QuerySensitiveDistance(fq, fq), 0.0);
}

}  // namespace
}  // namespace qse
