#include "src/core/adaboost.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/triple_sampler.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct BoostFixture {
  ObjectOracle<Vector> oracle;
  TrainingContext ctx;
  std::vector<Triple> triples;
};

BoostFixture MakeSetup(size_t n_cand, size_t n_train, size_t n_triples,
                uint64_t seed, bool selective = false) {
  auto oracle = test::MakePlaneOracle(n_cand + n_train, seed);
  TrainingContext ctx = TrainingContext::Build(
      oracle, test::Iota(n_cand), test::Iota(n_train, n_cand));
  Rng rng(seed + 1);
  auto triples =
      selective
          ? SampleSelectiveTriples(ctx.train_train_matrix(), n_triples, 3,
                                   &rng)
          : SampleRandomTriples(ctx.train_train_matrix(), n_triples, &rng);
  return {std::move(oracle), std::move(ctx), std::move(triples)};
}

TEST(MinimizeZTest, PerfectClassifierGetsLargePositiveAlpha) {
  // All margins positive: alpha should hit the numeric cap and Z ~ 0.
  std::vector<double> w = {0.5, 0.5};
  std::vector<double> s = {1.0, 2.0};
  double z = 1.0;
  double alpha = MinimizeZ(w, s, 0.0, &z);
  EXPECT_GT(alpha, 1.0);
  EXPECT_LT(z, 0.01);
}

TEST(MinimizeZTest, AntiClassifierGetsNegativeAlpha) {
  std::vector<double> w = {0.5, 0.5};
  std::vector<double> s = {-1.0, -2.0};
  double z = 1.0;
  double alpha = MinimizeZ(w, s, 0.0, &z);
  EXPECT_LT(alpha, -1.0);
  EXPECT_LT(z, 0.01);
}

TEST(MinimizeZTest, BalancedMarginsGiveZeroAlpha) {
  std::vector<double> w = {0.5, 0.5};
  std::vector<double> s = {1.0, -1.0};
  double z = 0.0;
  double alpha = MinimizeZ(w, s, 0.0, &z);
  EXPECT_NEAR(alpha, 0.0, 1e-9);
  EXPECT_NEAR(z, 1.0, 1e-9);
}

TEST(MinimizeZTest, AttainsAnalyticOptimumForBinaryMargins) {
  // For +-1 margins, the optimal alpha = 0.5 ln((1-e)/e) with weighted
  // error e, and Z = 2 sqrt(e (1-e)) (Schapire-Singer).
  std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  std::vector<double> s = {1, 1, 1, 1, -1};  // e = 0.2.
  double z = 0.0;
  double alpha = MinimizeZ(w, s, 0.0, &z);
  EXPECT_NEAR(alpha, 0.5 * std::log(0.8 / 0.2), 1e-6);
  EXPECT_NEAR(z, 2.0 * std::sqrt(0.2 * 0.8), 1e-9);
}

TEST(MinimizeZTest, PassiveMassIsAdditive) {
  std::vector<double> w = {0.25, 0.25};
  std::vector<double> s = {1, -1};
  double z = 0.0;
  MinimizeZ(w, s, 0.5, &z);
  EXPECT_NEAR(z, 1.0, 1e-9);  // 0.5 active at alpha=0 plus 0.5 passive.
}

TEST(MinimizeZTest, EmptyActiveSetIsNeutral) {
  double z = 0.0;
  double alpha = MinimizeZ({}, {}, 1.0, &z);
  EXPECT_DOUBLE_EQ(alpha, 0.0);
  EXPECT_DOUBLE_EQ(z, 1.0);
}

TEST(MinimizeZTest, ZIsAtMostValueAtZero) {
  // The minimizer can never be worse than not using the classifier.
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.Index(20);
    std::vector<double> w(n), s(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      w[i] = rng.Uniform(0.01, 1.0);
      s[i] = rng.Uniform(-2.0, 2.0);
      total += w[i];
    }
    for (double& x : w) x /= total;
    double z = 0.0;
    MinimizeZ(w, s, 0.0, &z);
    EXPECT_LE(z, 1.0 + 1e-9);
  }
}

TEST(AdaBoostTest, TrainingErrorDecreasesOnPlaneData) {
  BoostFixture setup = MakeSetup(15, 40, 800, 42);
  AdaBoostOptions options;
  options.rounds = 30;
  options.embeddings_per_round = 16;
  AdaBoostResult result = TrainAdaBoost(setup.ctx, setup.triples, options);
  ASSERT_GE(result.history.size(), 5u);
  double first = result.history.front().training_error;
  double last = result.history.back().training_error;
  EXPECT_LT(last, first);
  EXPECT_LT(last, 0.2);  // L2 plane data is easy to embed.
}

TEST(AdaBoostTest, EveryRoundHasZBelowOne) {
  BoostFixture setup = MakeSetup(12, 30, 500, 43);
  AdaBoostOptions options;
  options.rounds = 20;
  options.embeddings_per_round = 12;
  AdaBoostResult result = TrainAdaBoost(setup.ctx, setup.triples, options);
  for (const RoundInfo& info : result.history) {
    EXPECT_LT(info.z, 1.0) << "round " << info.round;
    EXPECT_NE(info.chosen.alpha, 0.0);
  }
}

TEST(AdaBoostTest, QueryInsensitiveModeUsesFullIntervals) {
  BoostFixture setup = MakeSetup(12, 30, 400, 44);
  AdaBoostOptions options;
  options.rounds = 10;
  options.query_sensitive = false;
  AdaBoostResult result = TrainAdaBoost(setup.ctx, setup.triples, options);
  for (const WeakClassifier& wc : result.rounds) {
    EXPECT_FALSE(wc.is_query_sensitive());
  }
}

TEST(AdaBoostTest, QuerySensitiveModeProducesSomeSplitters) {
  BoostFixture setup = MakeSetup(12, 40, 800, 45);
  AdaBoostOptions options;
  options.rounds = 25;
  options.query_sensitive = true;
  AdaBoostResult result = TrainAdaBoost(setup.ctx, setup.triples, options);
  size_t with_splitter = 0;
  for (const WeakClassifier& wc : result.rounds) {
    if (wc.is_query_sensitive()) ++with_splitter;
  }
  EXPECT_GT(with_splitter, 0u);
}

TEST(AdaBoostTest, DeterministicGivenSeed) {
  BoostFixture a = MakeSetup(10, 25, 300, 46);
  BoostFixture b = MakeSetup(10, 25, 300, 46);
  AdaBoostOptions options;
  options.rounds = 8;
  options.seed = 5;
  AdaBoostResult ra = TrainAdaBoost(a.ctx, a.triples, options);
  AdaBoostResult rb = TrainAdaBoost(b.ctx, b.triples, options);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_EQ(ra.rounds[i].spec.c1, rb.rounds[i].spec.c1);
    EXPECT_DOUBLE_EQ(ra.rounds[i].alpha, rb.rounds[i].alpha);
    EXPECT_DOUBLE_EQ(ra.rounds[i].lo, rb.rounds[i].lo);
  }
}

TEST(AdaBoostTest, SelectiveTriplesAlsoTrain) {
  BoostFixture setup = MakeSetup(12, 40, 600, 47, /*selective=*/true);
  AdaBoostOptions options;
  options.rounds = 15;
  AdaBoostResult result = TrainAdaBoost(setup.ctx, setup.triples, options);
  EXPECT_GE(result.rounds.size(), 5u);
  EXPECT_LT(result.final_training_error, 0.3);
}

TEST(AdaBoostTest, WeightedErrorOfChosenClassifierBelowHalf) {
  BoostFixture setup = MakeSetup(12, 30, 500, 48);
  AdaBoostOptions options;
  options.rounds = 15;
  AdaBoostResult result = TrainAdaBoost(setup.ctx, setup.triples, options);
  for (const RoundInfo& info : result.history) {
    // Weak-learner contract: better than random on the weighted sample
    // it accepted (allowing negative-alpha flips to count as such).
    double err = info.weighted_error;
    EXPECT_TRUE(err < 0.5 || info.chosen.alpha < 0.0)
        << "round " << info.round << " err " << err;
  }
}

TEST(WeakClassifierTest, EvaluateAndAccepts) {
  WeakClassifier wc;
  wc.lo = 0.0;
  wc.hi = 1.0;
  EXPECT_TRUE(wc.Accepts(0.5));
  EXPECT_TRUE(wc.Accepts(0.0));
  EXPECT_TRUE(wc.Accepts(1.0));
  EXPECT_FALSE(wc.Accepts(-0.1));
  EXPECT_FALSE(wc.Accepts(1.1));
  // F(q)=0.5, F(a)=0.6, F(b)=0.1: |0.5-0.1| - |0.5-0.6| = 0.3.
  EXPECT_NEAR(wc.Evaluate(0.5, 0.6, 0.1), 0.3, 1e-12);
  // Rejected query -> neutral 0 (Eq. 5).
  EXPECT_DOUBLE_EQ(wc.Evaluate(2.0, 0.6, 0.1), 0.0);
}

TEST(WeakClassifierTest, DefaultIsQueryInsensitive) {
  WeakClassifier wc;
  EXPECT_FALSE(wc.is_query_sensitive());
  EXPECT_TRUE(wc.Accepts(1e18));
  WeakClassifier split;
  split.hi = 5.0;
  EXPECT_TRUE(split.is_query_sensitive());
}

}  // namespace
}  // namespace qse
