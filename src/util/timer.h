#ifndef QSE_UTIL_TIMER_H_
#define QSE_UTIL_TIMER_H_

#include <chrono>

namespace qse {

/// Wall-clock stopwatch used by benches and experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qse

#endif  // QSE_UTIL_TIMER_H_
