#include "src/retrieval/lb_index.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace qse {

LbDtwIndex::LbDtwIndex(std::vector<Series> database, double band_fraction)
    : database_(std::move(database)), band_fraction_(band_fraction) {
  QSE_CHECK_MSG(!database_.empty(), "empty database");
  const size_t len = database_[0].length();
  const size_t dims = database_[0].dims();
  for (const Series& s : database_) {
    QSE_CHECK_MSG(s.length() == len && s.dims() == dims,
                  "LB_Keogh requires fixed-length, fixed-dims series");
  }
  window_ = static_cast<long>(
      std::ceil(band_fraction_ * static_cast<double>(len)));
}

LbDtwIndex::Result LbDtwIndex::Search(const Series& query, size_t k) const {
  return SearchImpl(query, k, /*lb_threads=*/0);
}

std::vector<LbDtwIndex::Result> LbDtwIndex::SearchBatch(
    const std::vector<Series>& queries, size_t k, size_t num_threads) const {
  std::vector<Result> results(queries.size());
  // Parallelize across queries (grain 2: each item runs LB scans plus
  // exact cDTW evaluations); keep each query's inner LB scan serial so
  // the two levels don't multiply thread counts.
  ParallelForGrain(
      0, queries.size(), 2,
      [&](size_t i) { results[i] = SearchImpl(queries[i], k, 1); },
      num_threads);
  return results;
}

LbDtwIndex::Result LbDtwIndex::SearchImpl(const Series& query, size_t k,
                                          size_t lb_threads) const {
  QSE_CHECK(query.length() == database_[0].length());
  QSE_CHECK(query.dims() == database_[0].dims());
  QSE_CHECK(k >= 1);
  k = std::min(k, database_.size());

  DtwEnvelope envelope = BuildEnvelope(query, window_);
  std::vector<ScoredIndex> by_lb(database_.size());
  ParallelFor(
      0, database_.size(),
      [&](size_t i) { by_lb[i] = {i, LbKeogh(envelope, database_[i])}; },
      lb_threads);
  std::sort(by_lb.begin(), by_lb.end());

  Result result;
  std::vector<ScoredIndex> best;  // Kept sorted ascending, size <= k.
  for (const ScoredIndex& cand : by_lb) {
    if (best.size() == k && cand.score > best.back().score) {
      break;  // All remaining lower bounds exceed the k-th best: done.
    }
    double exact =
        ConstrainedDtwWindow(query, database_[cand.index], window_);
    ++result.exact_evaluations;
    ScoredIndex entry{cand.index, exact};
    auto it = std::lower_bound(best.begin(), best.end(), entry);
    best.insert(it, entry);
    if (best.size() > k) best.pop_back();
  }
  result.neighbors = std::move(best);
  return result;
}

}  // namespace qse
