#ifndef QSE_UTIL_RANDOM_H_
#define QSE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace qse {

/// Deterministic random number generator used everywhere in the library.
///
/// Every stochastic component (dataset generators, triple samplers, the
/// AdaBoost weak learner) takes an explicit Rng (or seed) so that all
/// experiments are reproducible bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform index in [0, n).  Requires n > 0.
  size_t Index(size_t n);

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Index(i + 1)]);
    }
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i].  Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator; useful for giving each
  /// component its own stream while keeping one master seed.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qse

#endif  // QSE_UTIL_RANDOM_H_
