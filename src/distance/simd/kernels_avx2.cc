// AVX2 backend.  The whole translation unit is compiled with -mavx2 and
// -ffp-contract=off (CMake sets both on this file alone), and the
// intrinsics body is additionally guarded by QSE_BUILD_AVX2 so the
// getter still links — returning nullptr — on builds that cannot or
// choose not to compile it.
//
// Bit-identity with the scalar reference (kernels_scalar.cc) falls out
// of the register shapes: a 4-wide float64 accumulator advanced 4 terms
// per step IS the scalar four-lane discipline, and two 8-wide float32
// accumulators advanced 16 terms per step ARE the sixteen-lane one.
// Lanes are reduced through the lanes.h trees' additions verbatim — in
// registers on the hot paths (ReduceF64Acc/ReduceF32Acc), never through
// hadd or permute-based shortcuts with different rounding orders; the
// shared scalar helpers run only when a tail folds into lane 0.
#include "src/distance/simd/kernels.h"

#if defined(QSE_BUILD_AVX2)

#include <immintrin.h>

#include <cmath>

#include "src/distance/simd/lanes.h"

namespace qse {
namespace simd {
namespace {

inline __m256d AbsPd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}
inline __m256 AbsPs(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

/// In-register ReduceF64Lanes: every vector add performs the same IEEE
/// additions lane-for-lane as lanes.h's (l0+l1)+(l2+l3), so the
/// abandon-check path never round-trips the accumulator through the
/// stack (that store-to-load round trip dominated per-row cost).
inline double ReduceF64Acc(__m256d acc) {
  __m128d lo = _mm256_castpd256_pd128(acc);    // [l0, l1]
  __m128d hi = _mm256_extractf128_pd(acc, 1);  // [l2, l3]
  __m128d pairs =
      _mm_add_pd(_mm_unpacklo_pd(lo, hi), _mm_unpackhi_pd(lo, hi));
  return _mm_cvtsd_f64(_mm_add_sd(pairs, _mm_unpackhi_pd(pairs, pairs)));
}

/// In-register ReduceF32Lanes over the split accumulators: adding `lo`
/// (lanes 0-7) to `hi` (lanes 8-15) IS the tree's first level, then one
/// vector add per remaining level.
inline float ReduceF32Acc(__m256 lo, __m256 hi) {
  __m256 r8 = _mm256_add_ps(lo, hi);
  __m128 r4 = _mm_add_ps(_mm256_castps256_ps128(r8),
                         _mm256_extractf128_ps(r8, 1));
  __m128 r2 = _mm_add_ps(r4, _mm_movehl_ps(r4, r4));
  return _mm_cvtss_f32(_mm_add_ss(r2, _mm_movehdup_ps(r2)));
}

/// Four-lane float64 driver.  `vterm(i)` yields the terms for dims
/// i..i+3 as one vector; `sterm(i)` is the matching scalar term for the
/// d % 4 tail, which folds into lane 0 exactly like the reference.
template <typename VecTerm, typename ScalTerm>
double RunF64(size_t d, double abandon, const VecTerm& vterm,
              const ScalTerm& sterm) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t hi = i + kAbandonBlock; i < hi; i += 4) {
      acc = _mm256_add_pd(acc, vterm(i));
    }
    double partial = ReduceF64Acc(acc);
    if (partial > abandon) return partial;
  }
  for (; i + 4 <= d; i += 4) {
    acc = _mm256_add_pd(acc, vterm(i));
  }
  if (i == d) return ReduceF64Acc(acc);
  alignas(32) double l[kF64Lanes];
  _mm256_store_pd(l, acc);
  for (; i < d; ++i) l[0] += sterm(i);
  return ReduceF64Lanes(l);
}

/// Sixteen-lane float32 driver: lanes 0-7 live in `lo`, lanes 8-15 in
/// `hi`, sixteen terms consumed per step.  `vterm(i)` yields the terms
/// for dims i..i+7.
template <typename VecTerm, typename ScalTerm>
float RunF32(size_t d, float abandon, const VecTerm& vterm,
             const ScalTerm& sterm) {
  __m256 lo = _mm256_setzero_ps();
  __m256 hi = _mm256_setzero_ps();
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t end = i + kAbandonBlock; i < end; i += 16) {
      lo = _mm256_add_ps(lo, vterm(i));
      hi = _mm256_add_ps(hi, vterm(i + 8));
    }
    float partial = ReduceF32Acc(lo, hi);
    if (partial > abandon) return partial;
  }
  for (; i + 16 <= d; i += 16) {
    lo = _mm256_add_ps(lo, vterm(i));
    hi = _mm256_add_ps(hi, vterm(i + 8));
  }
  if (i == d) return ReduceF32Acc(lo, hi);
  alignas(32) float l[kF32Lanes];
  _mm256_store_ps(l, lo);
  _mm256_store_ps(l + 8, hi);
  for (; i < d; ++i) l[0] += sterm(i);
  return ReduceF32Lanes(l);
}

/// Eight int8 dims starting at i, as exact float32 absolute differences
/// (integer math is exact; cvtepi32_ps of 0..254 is exact).
inline __m256 AbsDiffI8x8(const int8_t* q, const int8_t* x, size_t i) {
  __m128i qb = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
  __m128i xb = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
  __m256i diff = _mm256_sub_epi32(_mm256_cvtepi8_epi32(qb),
                                  _mm256_cvtepi8_epi32(xb));
  return _mm256_cvtepi32_ps(_mm256_abs_epi32(diff));
}

inline float AbsDiffI8(int8_t a, int8_t b) {
  int diff = static_cast<int>(a) - static_cast<int>(b);
  return static_cast<float>(diff < 0 ? -diff : diff);
}

/// Lowest eight bytes of `bytes` (unsigned absolute differences 0..255)
/// widened to exact float32.
inline __m256 WidenU8x8(__m128i bytes) {
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

/// int8 driver holding the sixteen-lane float32 discipline while
/// computing 32 absolute differences per byte-wide max/min/sub (|a-b| on
/// signed bytes is exact as an unsigned byte).  The eight-dim groups are
/// widened and accumulated in dim order — lo takes dims i and i+16, hi
/// takes i+8 and i+24 — the exact add order of the generic sixteen-dim
/// step, so completed sums stay bit-identical to the scalar reference.
template <typename Term, typename ScalTerm>
float RunI8(const int8_t* q, const int8_t* x, size_t d, float abandon,
            const Term& term, const ScalTerm& sterm) {
  static_assert(kAbandonBlock % 32 == 0, "whole ymm loads per block");
  __m256 lo = _mm256_setzero_ps();
  __m256 hi = _mm256_setzero_ps();
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t end = i + kAbandonBlock; i < end; i += 32) {
      __m256i qb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
      __m256i xb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
      __m256i diff = _mm256_sub_epi8(_mm256_max_epi8(qb, xb),
                                     _mm256_min_epi8(qb, xb));
      __m128i dlo = _mm256_castsi256_si128(diff);
      __m128i dhi = _mm256_extracti128_si256(diff, 1);
      lo = _mm256_add_ps(lo, term(WidenU8x8(dlo), i));
      hi = _mm256_add_ps(hi, term(WidenU8x8(_mm_srli_si128(dlo, 8)), i + 8));
      lo = _mm256_add_ps(lo, term(WidenU8x8(dhi), i + 16));
      hi = _mm256_add_ps(hi, term(WidenU8x8(_mm_srli_si128(dhi, 8)), i + 24));
    }
    float partial = ReduceF32Acc(lo, hi);
    if (partial > abandon) return partial;
  }
  for (; i + 16 <= d; i += 16) {
    lo = _mm256_add_ps(lo, term(AbsDiffI8x8(q, x, i), i));
    hi = _mm256_add_ps(hi, term(AbsDiffI8x8(q, x, i + 8), i + 8));
  }
  if (i == d) return ReduceF32Acc(lo, hi);
  alignas(32) float l[kF32Lanes];
  _mm256_store_ps(l, lo);
  _mm256_store_ps(l + 8, hi);
  for (; i < d; ++i) l[0] += sterm(i);
  return ReduceF32Lanes(l);
}

double L1F64(const double* q, const double* x, size_t d, double abandon) {
  return RunF64(
      d, abandon,
      [&](size_t i) {
        return AbsPd(_mm256_sub_pd(_mm256_loadu_pd(q + i),
                                   _mm256_loadu_pd(x + i)));
      },
      [&](size_t i) { return std::fabs(q[i] - x[i]); });
}

double L2F64(const double* q, const double* x, size_t d, double abandon) {
  return RunF64(
      d, abandon,
      [&](size_t i) {
        __m256d diff =
            _mm256_sub_pd(_mm256_loadu_pd(q + i), _mm256_loadu_pd(x + i));
        return _mm256_mul_pd(diff, diff);
      },
      [&](size_t i) {
        double diff = q[i] - x[i];
        return diff * diff;
      });
}

double Wl1F64(const double* q, const double* x, const double* w, size_t d,
              double abandon) {
  return RunF64(
      d, abandon,
      [&](size_t i) {
        return _mm256_mul_pd(_mm256_loadu_pd(w + i),
                             AbsPd(_mm256_sub_pd(_mm256_loadu_pd(q + i),
                                                 _mm256_loadu_pd(x + i))));
      },
      [&](size_t i) { return w[i] * std::fabs(q[i] - x[i]); });
}

float L1F32(const float* q, const float* x, size_t d, float abandon) {
  return RunF32(
      d, abandon,
      [&](size_t i) {
        return AbsPs(_mm256_sub_ps(_mm256_loadu_ps(q + i),
                                   _mm256_loadu_ps(x + i)));
      },
      [&](size_t i) { return std::fabs(q[i] - x[i]); });
}

float L2F32(const float* q, const float* x, size_t d, float abandon) {
  return RunF32(
      d, abandon,
      [&](size_t i) {
        __m256 diff =
            _mm256_sub_ps(_mm256_loadu_ps(q + i), _mm256_loadu_ps(x + i));
        return _mm256_mul_ps(diff, diff);
      },
      [&](size_t i) {
        float diff = q[i] - x[i];
        return diff * diff;
      });
}

float Wl1F32(const float* q, const float* x, const float* w, size_t d,
             float abandon) {
  return RunF32(
      d, abandon,
      [&](size_t i) {
        return _mm256_mul_ps(_mm256_loadu_ps(w + i),
                             AbsPs(_mm256_sub_ps(_mm256_loadu_ps(q + i),
                                                 _mm256_loadu_ps(x + i))));
      },
      [&](size_t i) { return w[i] * std::fabs(q[i] - x[i]); });
}

float Wl1I8(const int8_t* q, const int8_t* x, const float* c, size_t d,
            float abandon) {
  return RunI8(
      q, x, d, abandon,
      [&](__m256 fd, size_t i) {
        return _mm256_mul_ps(_mm256_loadu_ps(c + i), fd);
      },
      [&](size_t i) { return c[i] * AbsDiffI8(q[i], x[i]); });
}

float Wl2I8(const int8_t* q, const int8_t* x, const float* c, size_t d,
            float abandon) {
  return RunI8(
      q, x, d, abandon,
      [&](__m256 fd, size_t i) {
        return _mm256_mul_ps(_mm256_mul_ps(_mm256_loadu_ps(c + i), fd), fd);
      },
      [&](size_t i) {
        float fd = AbsDiffI8(q[i], x[i]);
        return (c[i] * fd) * fd;
      });
}

const KernelTable kAvx2Table = {
    L1F64, L2F64, Wl1F64, L1F32, L2F32, Wl1F32, Wl1I8, Wl2I8,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace simd
}  // namespace qse

#else  // !QSE_BUILD_AVX2

namespace qse {
namespace simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace simd
}  // namespace qse

#endif  // QSE_BUILD_AVX2
