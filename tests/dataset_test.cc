#include "src/data/dataset.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "src/data/distance_cache.h"
#include "src/distance/lp.h"

namespace qse {
namespace {

ObjectOracle<Vector> MakeVectorOracle() {
  std::vector<Vector> objs = {{0, 0}, {1, 0}, {0, 2}, {3, 3}};
  return ObjectOracle<Vector>(std::move(objs), L2Distance);
}

TEST(ObjectOracleTest, DistanceMatchesFunction) {
  auto oracle = MakeVectorOracle();
  EXPECT_EQ(oracle.size(), 4u);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 3), std::sqrt(18.0));
}

TEST(ObjectOracleTest, ExternalQueryDistance) {
  auto oracle = MakeVectorOracle();
  Vector query = {0, 1};
  EXPECT_DOUBLE_EQ(oracle.DistanceToObject(query, 0), 1.0);
  EXPECT_DOUBLE_EQ(oracle.DistanceToObject(query, 2), 1.0);
}

TEST(CountingOracleTest, CountsEveryCall) {
  auto inner = MakeVectorOracle();
  CountingOracle counting(&inner);
  EXPECT_EQ(counting.count(), 0u);
  counting.Distance(0, 1);
  counting.Distance(0, 1);
  counting.Distance(2, 3);
  EXPECT_EQ(counting.count(), 3u);
  counting.ResetCount();
  EXPECT_EQ(counting.count(), 0u);
}

TEST(FunctionOracleTest, DelegatesToFunction) {
  FunctionOracle oracle(5, [](size_t i, size_t j) {
    return std::fabs(static_cast<double>(i) - static_cast<double>(j));
  });
  EXPECT_EQ(oracle.size(), 5u);
  EXPECT_DOUBLE_EQ(oracle.Distance(1, 4), 3.0);
}

TEST(CachingOracleTest, MemoizesSymmetrically) {
  auto inner = MakeVectorOracle();
  CountingOracle counting(&inner);
  CachingOracle cache(&counting, "test-fp");
  double d1 = cache.Distance(0, 3);
  double d2 = cache.Distance(3, 0);  // Symmetric key: served from cache.
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(counting.count(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.cached_pairs(), 1u);
}

TEST(CachingOracleTest, SaveLoadRoundTrip) {
  auto inner = MakeVectorOracle();
  CountingOracle counting(&inner);
  CachingOracle cache(&counting, "fp-v1");
  cache.Distance(0, 1);
  cache.Distance(1, 2);
  std::string path = testing::TempDir() + "/qse_cache_test.bin";
  ASSERT_TRUE(cache.Save(path).ok());

  CountingOracle counting2(&inner);
  CachingOracle cache2(&counting2, "fp-v1");
  ASSERT_TRUE(cache2.Load(path).ok());
  EXPECT_EQ(cache2.cached_pairs(), 2u);
  cache2.Distance(0, 1);
  cache2.Distance(1, 2);
  EXPECT_EQ(counting2.count(), 0u);  // Fully served from the loaded cache.
  std::remove(path.c_str());
}

TEST(CachingOracleTest, FingerprintMismatchRejected) {
  auto inner = MakeVectorOracle();
  CachingOracle cache(&inner, "fp-v1");
  cache.Distance(0, 1);
  std::string path = testing::TempDir() + "/qse_cache_fp_test.bin";
  ASSERT_TRUE(cache.Save(path).ok());

  CachingOracle other(&inner, "fp-v2");
  Status s = other.Load(path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CachingOracleTest, MissingFileIsNotFound) {
  auto inner = MakeVectorOracle();
  CachingOracle cache(&inner, "fp");
  Status s = cache.Load("/nonexistent/qse-cache.bin");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(CachingOracleTest, ValuesMatchInnerOracle) {
  auto inner = MakeVectorOracle();
  CachingOracle cache(&inner, "fp");
  for (size_t i = 0; i < inner.size(); ++i) {
    for (size_t j = 0; j < inner.size(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(cache.Distance(i, j), inner.Distance(i, j));
    }
  }
}

}  // namespace
}  // namespace qse
