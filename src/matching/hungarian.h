#ifndef QSE_MATCHING_HUNGARIAN_H_
#define QSE_MATCHING_HUNGARIAN_H_

#include <cstddef>
#include <vector>

#include "src/util/matrix.h"

namespace qse {

/// Result of a minimum-cost bipartite assignment.
struct AssignmentResult {
  /// row_to_col[r] = column matched to row r.
  std::vector<size_t> row_to_col;
  /// Total cost of the optimal assignment.
  double total_cost = 0.0;
};

/// Solves the rectangular assignment problem min_perm sum_r cost(r, perm(r))
/// with the O(n^2 m) Hungarian algorithm (Kuhn-Munkres with potentials).
///
/// Requires rows() <= cols(); every row is matched to a distinct column.
/// This is the "computationally expensive Hungarian algorithm" step of the
/// Shape Context Distance [4] used by the paper's MNIST experiments.
AssignmentResult SolveAssignment(const Matrix& cost);

}  // namespace qse

#endif  // QSE_MATCHING_HUNGARIAN_H_
