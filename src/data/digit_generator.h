#ifndef QSE_DATA_DIGIT_GENERATOR_H_
#define QSE_DATA_DIGIT_GENERATOR_H_

#include <string>
#include <vector>

#include "src/distance/point_set.h"
#include "src/util/random.h"

namespace qse {

/// Parameters controlling the synthetic handwritten-digit generator.
///
/// This generator is the repo's stand-in for the MNIST database [22] used
/// by the paper (DESIGN.md substitution #1): each sample is a 2D point set
/// drawn from one of ten stroke templates (digits 0-9), distorted by a
/// random affine map, a smooth low-frequency warp and per-point jitter —
/// the same kinds of variation that distinguish writers in MNIST.
struct DigitGeneratorParams {
  /// Points sampled along the digit's strokes (shape context input size).
  size_t points_per_digit = 24;
  /// Std-dev of the random rotation, degrees.
  double rotation_stddev_deg = 9.0;
  /// Std-dev of the random shear coefficient.
  double shear_stddev = 0.12;
  /// Std-dev of the random anisotropic scale around 1.
  double scale_stddev = 0.08;
  /// Amplitude of the smooth sinusoidal warp (units of the unit box).
  double warp_amplitude = 0.035;
  /// Per-point Gaussian jitter std-dev.
  double jitter_stddev = 0.012;
};

/// A generated digit: the point-set shape and its class label in [0, 9].
struct LabeledPointSet {
  PointSet shape;
  int label = 0;
};

/// Deterministic (seeded) generator of synthetic handwritten digits.
class DigitGenerator {
 public:
  DigitGenerator(const DigitGeneratorParams& params, uint64_t seed);

  /// One sample of a uniformly random digit class.
  LabeledPointSet Sample();

  /// One sample of the given class (0-9).
  LabeledPointSet SampleDigit(int digit);

  /// `count` samples with uniformly rotating class labels (balanced).
  std::vector<LabeledPointSet> Generate(size_t count);

  /// The undistorted template point set for a class; exposed for tests.
  static PointSet Template(int digit, size_t points);

 private:
  DigitGeneratorParams params_;
  Rng rng_;
};

/// Renders a point set into `height` strings of `width` characters
/// ('#' where a point lands); used by the examples for quick visuals.
std::vector<std::string> RenderAscii(const PointSet& ps, size_t width,
                                     size_t height);

}  // namespace qse

#endif  // QSE_DATA_DIGIT_GENERATOR_H_
