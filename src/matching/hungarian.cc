#include "src/matching/hungarian.h"

#include <cassert>
#include <limits>

namespace qse {

AssignmentResult SolveAssignment(const Matrix& cost) {
  const size_t n = cost.rows();
  const size_t m = cost.cols();
  assert(n > 0);
  assert(n <= m);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Potentials-based Hungarian algorithm (1-based internal indexing).
  // u[i], v[j] are the dual potentials; p[j] is the row matched to column j.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0), way(m + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;  // Virtual column currently holding row i.
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.row_to_col.assign(n, 0);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) result.row_to_col[p[j] - 1] = j - 1;
  }
  for (size_t r = 0; r < n; ++r) {
    result.total_cost += cost(r, result.row_to_col[r]);
  }
  return result;
}

}  // namespace qse
