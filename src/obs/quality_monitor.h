#ifndef QSE_OBS_QUALITY_MONITOR_H_
#define QSE_OBS_QUALITY_MONITOR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/obs/metric_registry.h"
#include "src/obs/trace.h"
#include "src/retrieval/embedded_database.h"
#include "src/util/bounded_queue.h"

namespace qse {
namespace obs {

/// Page-Hinkley change detector for a DOWNWARD shift in the mean of a
/// bounded quality signal (per-audit recall).  Classic cumulative test:
/// feed x_t, accumulate m_t += x_t - mean_t + delta against a running
/// mean, track M_t = max m_t, and alarm once the gap M_t - m_t exceeds
/// lambda — i.e. the signal has run persistently below its own mean by
/// more than the delta tolerance.  The running mean uses a capped sample
/// count (mean_window), so after a sustained shift it re-converges to
/// the new level and the gap stops growing; hysteresis then clears the
/// alarm after clear_after consecutive samples back within delta of the
/// (re-converged) mean, and clearing resets ALL state — the detector
/// re-baselines at the new level, so a recurrent shift alarms again.
///
/// Detects *change*, not low absolute quality: a database that always
/// had 0.6 recall never alarms; one that degrades 0.9 -> 0.6 does.
/// Not thread-safe — the QualityMonitor feeds it from its single audit
/// worker.
struct PageHinkleyOptions {
  /// Tolerated per-sample slack below the running mean; dips smaller
  /// than this never accumulate toward an alarm.
  double delta = 0.01;
  /// Alarm threshold on the cumulative gap.  With recall in [0, 1] a
  /// drop of size D alarms after about lambda / D degraded samples.
  double lambda = 1.0;
  /// Samples before the test is armed (warmup for the running mean).
  size_t min_samples = 16;
  /// Consecutive healthy samples (within delta of the mean) that clear
  /// an active alarm.
  size_t clear_after = 32;
  /// Cap on the running mean's effective sample count — its adaptation
  /// time constant after a shift.
  size_t mean_window = 32;
};

class PageHinkleyDetector {
 public:
  explicit PageHinkleyDetector(PageHinkleyOptions options = {});

  /// Feeds one sample.  Returns true when the alarm STATE CHANGED on
  /// this sample (raised or cleared); read alarmed() for the new state.
  bool Update(double x);

  bool alarmed() const { return alarmed_; }
  /// Samples since construction or the last clear (re-baseline).
  size_t samples() const { return n_; }
  double mean() const { return mean_; }

 private:
  void Reset();

  PageHinkleyOptions options_;
  size_t n_ = 0;
  double mean_ = 0.0;
  double mh_ = 0.0;
  double max_mh_ = 0.0;
  bool alarmed_ = false;
  size_t healthy_streak_ = 0;
};

/// The serving path's answer for one sampled query, in database-id
/// terms, plus everything needed to recompute the exact answer later:
/// the query's exact-distance resolver and the epoch-pinned snapshots
/// the serving path actually scanned.  Auditing against those pinned
/// views (not the live database) makes the comparison exact under
/// concurrent mutation — server and auditor score the same rows.
struct AuditNeighbor {
  size_t db_id = 0;
  double score = 0.0;
};

struct AuditTask {
  /// DX(query, o) for database ids o; invoked from the audit worker.
  DxToDatabaseFn dx;
  /// k the request asked for.
  size_t k = 0;
  /// Neighbors the serving path returned, in served order.
  std::vector<AuditNeighbor> served;
  /// The pinned views the serving path used: one for the monolithic
  /// engine, one per shard for the sharded engine.  Holding them delays
  /// version reclamation, which is why the audit queue is bounded and
  /// sheds instead of growing.
  std::vector<EmbeddedDatabase::Snapshot> snapshots;
  /// The request's trace when it carried one; the drift alarm stamps a
  /// mark into it.
  std::shared_ptr<RequestTrace> trace;
};

/// Counters/state mirror for tests and bench gates (metric values are
/// also published to the registry).
struct QualityMonitorStats {
  uint64_t sampled = 0;    ///< audits accepted for processing
  uint64_t completed = 0;  ///< audits fully processed
  uint64_t shed = 0;       ///< audits dropped because the queue was full
  uint64_t mismatches = 0; ///< audits whose served set != exact top-k
  uint64_t alarms = 0;     ///< drift alarm raise events
  bool drift_alarm = false;
  double recall_at_k = 0.0;        ///< rolling-window mean
  double rank_displacement = 0.0;  ///< rolling-window mean
  double score_error = 0.0;        ///< rolling-window mean
};

struct QualityMonitorOptions {
  /// Sample 1 of every N completed responses (ShouldSample ticks).
  size_t sample_every_n = 64;
  /// Bounded audit queue: when full, new audits are SHED (counted),
  /// never blocking or failing the serving path.
  size_t queue_capacity = 256;
  /// Rolling window (in audits) behind the published quality gauges.
  size_t window = 32;
  PageHinkleyOptions detector;
  /// Registry for the qse_quality_* instruments; null means Global().
  MetricRegistry* registry = nullptr;
};

/// Samples completed retrievals off the hot path and audits each one by
/// re-running the query as exact brute-force kNN over the same
/// epoch-pinned snapshot(s) the serving path used.  Publishes rolling
/// quality instruments (qse_quality_recall_at_k, _rank_displacement,
/// _score_error, audits_{sampled,completed,shed}_total) and feeds
/// per-audit recall to a Page-Hinkley drift detector whose state drives
/// the qse_quality_drift_alarm gauge, a WARN log line and a trace mark.
///
/// Hot-path cost: ShouldSample is one relaxed fetch_add; a sampled
/// response additionally moves its snapshots and copies its k neighbor
/// ids into the queue.  The exact re-scan happens on the single
/// background worker; under pressure audits are shed, requests never.
class QualityMonitor {
 public:
  explicit QualityMonitor(QualityMonitorOptions options = {});
  ~QualityMonitor();

  QualityMonitor(const QualityMonitor&) = delete;
  QualityMonitor& operator=(const QualityMonitor&) = delete;

  /// One relaxed tick; true on every sample_every_n-th call.  Callers
  /// (the engines) consult it once per completed retrieval.
  bool ShouldSample();

  /// Enqueues one audit; sheds (and counts) it when the queue is full
  /// or the monitor is shut down.  Never blocks.
  void SubmitAudit(AuditTask task);

  /// Blocks until every audit accepted before this call is processed
  /// (tests and benches that need deterministic metric reads).
  void Flush();

  /// Stops the worker after draining queued audits.  Idempotent; the
  /// destructor calls it.
  void Shutdown();

  QualityMonitorStats stats() const;

  /// Detector state, for gates that need it without metric parsing.
  bool drift_alarmed() const {
    return drift_alarm_->Value() != 0;
  }

 private:
  void WorkerLoop();
  void ProcessAudit(AuditTask& task);

  QualityMonitorOptions options_;
  std::atomic<uint64_t> tick_{0};

  BoundedQueue<AuditTask> queue_;

  /// Flush bookkeeping: accepted_ counts tasks that entered the queue,
  /// done_ counts tasks the worker finished.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> done_{0};
  std::atomic<bool> shutdown_{false};

  // Registry instruments (resolved once at construction).
  Counter* audits_sampled_;
  Counter* audits_completed_;
  Counter* audits_shed_;
  Counter* audit_mismatches_;
  Counter* drift_alarms_;
  Gauge* drift_alarm_;
  FloatGauge* recall_gauge_;
  FloatGauge* displacement_gauge_;
  FloatGauge* score_error_gauge_;

  // Worker-thread-only state (no locking needed).
  PageHinkleyDetector detector_;
  std::vector<double> recall_window_;
  std::vector<double> displacement_window_;
  std::vector<double> score_error_window_;
  size_t window_next_ = 0;
  size_t window_filled_ = 0;

  std::thread worker_;
};

}  // namespace obs
}  // namespace qse

#endif  // QSE_OBS_QUALITY_MONITOR_H_
