#include "src/obs/metric_registry.h"

#include <algorithm>
#include <cstring>

#include "src/obs/build_info.h"
#include "src/util/logging.h"

namespace qse {
namespace obs {
namespace internal {

size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

}  // namespace internal

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank target, 1-based, matching the bench harness convention.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    uint64_t in_bucket = bucket_counts[b];
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (b >= boundaries.size()) {
      // Overflow bucket: no upper edge; report its lower boundary.
      return boundaries.empty() ? 0.0 : boundaries.back();
    }
    double lo = (b == 0) ? 0.0 : boundaries[b - 1];
    double hi = boundaries[b];
    if (in_bucket == 0) return hi;
    double frac =
        static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return boundaries.empty() ? 0.0 : boundaries.back();
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      num_buckets_(boundaries_.size() + 1) {
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    QSE_CHECK_MSG(boundaries_[i] > boundaries_[i - 1],
                  "histogram boundaries must be strictly ascending");
  }
  // slots layout per stripe: [bucket counts..., count, packed sum].
  const size_t slots = num_buckets_ + 2;
  for (auto& cell : cells_) {
    cell.slots.reset(new std::atomic<uint64_t>[slots]);
    for (size_t i = 0; i < slots; ++i) {
      cell.slots[i].store(0, std::memory_order_relaxed);
    }
  }
}

size_t Histogram::BucketOf(double value) const {
  // First boundary >= value; past-the-end lands in the overflow bucket.
  return static_cast<size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value) -
      boundaries_.begin());
}

void Histogram::Record(double value) {
  Cell& cell = cells_[internal::ThisThreadStripe()];
  cell.slots[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  cell.slots[num_buckets_].fetch_add(1, std::memory_order_relaxed);
  // Sum: CAS loop over the double's bit pattern.  Uncontended in the
  // common case (each stripe has few writers), so the loop rarely spins.
  std::atomic<uint64_t>& sum_slot = cell.slots[num_buckets_ + 1];
  uint64_t observed = sum_slot.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    double next = current + value;
    uint64_t desired;
    std::memcpy(&desired, &next, sizeof(desired));
    if (sum_slot.compare_exchange_weak(observed, desired,
                                       std::memory_order_relaxed)) {
      break;
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.boundaries = boundaries_;
  snap.bucket_counts.assign(num_buckets_, 0);
  for (const auto& cell : cells_) {
    for (size_t b = 0; b < num_buckets_; ++b) {
      snap.bucket_counts[b] += cell.slots[b].load(std::memory_order_relaxed);
    }
    snap.count += cell.slots[num_buckets_].load(std::memory_order_relaxed);
    uint64_t bits =
        cell.slots[num_buckets_ + 1].load(std::memory_order_relaxed);
    double part;
    std::memcpy(&part, &bits, sizeof(part));
    snap.sum += part;
  }
  return snap;
}

std::vector<double> ExponentialBoundaries(double first, double factor,
                                          size_t count) {
  QSE_CHECK_MSG(first > 0 && factor > 1 && count > 0,
                "ExponentialBoundaries needs first > 0, factor > 1, count > 0");
  std::vector<double> boundaries;
  boundaries.reserve(count);
  double edge = first;
  for (size_t i = 0; i < count; ++i) {
    boundaries.push_back(edge);
    edge *= factor;
  }
  return boundaries;
}

std::vector<double> DefaultLatencyBoundariesNs() {
  // 1us, 2us, 4us, ..., ~4.3s: 23 buckets covering every stage this
  // codebase times, cheap enough to keep on every latency metric.
  return ExponentialBoundaries(1e3, 2.0, 23);
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  QSE_CHECK_MSG(entry.gauge == nullptr && entry.float_gauge == nullptr &&
                    entry.histogram == nullptr,
                "metric '" << name << "' already registered with another type");
  if (entry.counter == nullptr) entry.counter.reset(new Counter);
  return entry.counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  QSE_CHECK_MSG(entry.counter == nullptr && entry.float_gauge == nullptr &&
                    entry.histogram == nullptr,
                "metric '" << name << "' already registered with another type");
  if (entry.gauge == nullptr) entry.gauge.reset(new Gauge);
  return entry.gauge.get();
}

FloatGauge* MetricRegistry::GetFloatGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  QSE_CHECK_MSG(entry.counter == nullptr && entry.gauge == nullptr &&
                    entry.histogram == nullptr,
                "metric '" << name << "' already registered with another type");
  if (entry.float_gauge == nullptr) entry.float_gauge.reset(new FloatGauge);
  return entry.float_gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> boundaries) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[name];
  QSE_CHECK_MSG(entry.counter == nullptr && entry.gauge == nullptr &&
                    entry.float_gauge == nullptr,
                "metric '" << name << "' already registered with another type");
  if (entry.histogram == nullptr) {
    entry.histogram.reset(new Histogram(std::move(boundaries)));
  }
  return entry.histogram.get();
}

void MetricRegistry::ForEach(
    const std::function<void(const std::string&, const Counter*, const Gauge*,
                             const FloatGauge*, const Histogram*)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& kv : metrics_) {
    fn(kv.first, kv.second.counter.get(), kv.second.gauge.get(),
       kv.second.float_gauge.get(), kv.second.histogram.get());
  }
}

MetricRegistry& MetricRegistry::Global() {
  // Registered once, on first use: every export of the global registry
  // carries the qse_build_info identity gauge.
  static MetricRegistry* registry = [] {
    MetricRegistry* r = new MetricRegistry;
    RegisterBuildInfo(r);
    return r;
  }();
  return *registry;
}

}  // namespace obs
}  // namespace qse
