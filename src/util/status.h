#ifndef QSE_UTIL_STATUS_H_
#define QSE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace qse {

/// Canonical error codes, modelled after the Google/Abseil canonical space.
/// The library does not use C++ exceptions; fallible operations return
/// Status (or StatusOr<T>, see statusor.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIOError = 6,
  kUnimplemented = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
  kUnavailable = 10,
  kDataLoss = 11,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Value type carrying either success (OK) or an error code plus message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Early-return helper: propagates a non-OK status to the caller.
#define QSE_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::qse::Status _qse_status = (expr);      \
    if (!_qse_status.ok()) return _qse_status; \
  } while (0)

}  // namespace qse

#endif  // QSE_UTIL_STATUS_H_
