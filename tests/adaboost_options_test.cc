// Coverage for the weak-learner configuration knobs: interval-selection
// criterion, embedding reuse, pivot fraction and early stopping.
#include <limits>

#include <gtest/gtest.h>

#include "src/core/adaboost.h"
#include "src/core/triple_sampler.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct Fixture {
  ObjectOracle<Vector> oracle;
  TrainingContext ctx;
  std::vector<Triple> triples;
};

Fixture Make(uint64_t seed, size_t n_triples = 600) {
  auto oracle = test::MakePlaneOracle(60, seed);
  TrainingContext ctx = TrainingContext::Build(oracle, test::Iota(20),
                                               test::Iota(40, 20));
  Rng rng(seed + 1);
  auto triples =
      SampleSelectiveTriples(ctx.train_train_matrix(), n_triples, 3, &rng);
  return {std::move(oracle), std::move(ctx), std::move(triples)};
}

TEST(AdaBoostOptionsTest, BothIntervalCriteriaTrain) {
  Fixture f = Make(1);
  for (auto sel : {AdaBoostOptions::IntervalSelection::kCorrelation,
                   AdaBoostOptions::IntervalSelection::kZBound}) {
    AdaBoostOptions options;
    options.rounds = 12;
    options.interval_selection = sel;
    AdaBoostResult r = TrainAdaBoost(f.ctx, f.triples, options);
    EXPECT_GE(r.rounds.size(), 4u);
    EXPECT_LT(r.final_training_error, 0.35);
  }
}

TEST(AdaBoostOptionsTest, ZBoundProducesNarrowerIntervals) {
  // The documented behavioural difference: kZBound prefers low-coverage
  // splitters, kCorrelation high-coverage ones.  Measure mean coverage of
  // the chosen intervals over the training queries' projections.
  Fixture f = Make(2, 1200);
  auto coverage = [&](const AdaBoostResult& r) {
    double total = 0.0;
    size_t count = 0;
    std::vector<double> values(f.ctx.num_train_objects());
    for (const WeakClassifier& wc : r.rounds) {
      Eval1DOnAllTrainObjects(wc.spec, f.ctx, values.data());
      size_t inside = 0;
      for (const Triple& t : f.triples) {
        if (wc.Accepts(values[t.q])) ++inside;
      }
      total += static_cast<double>(inside) /
               static_cast<double>(f.triples.size());
      ++count;
    }
    return total / static_cast<double>(count);
  };
  AdaBoostOptions corr;
  corr.rounds = 16;
  corr.reuse_fraction = 0.0;
  corr.interval_selection =
      AdaBoostOptions::IntervalSelection::kCorrelation;
  AdaBoostOptions zb = corr;
  zb.interval_selection = AdaBoostOptions::IntervalSelection::kZBound;
  double cov_corr = coverage(TrainAdaBoost(f.ctx, f.triples, corr));
  double cov_zb = coverage(TrainAdaBoost(f.ctx, f.triples, zb));
  EXPECT_GT(cov_corr, cov_zb);
  EXPECT_GT(cov_corr, 0.5);
}

TEST(AdaBoostOptionsTest, ReuseCreatesRepeatedCoordinates) {
  Fixture f = Make(3, 1000);
  AdaBoostOptions options;
  options.rounds = 40;
  options.reuse_fraction = 0.8;
  options.embeddings_per_round = 12;
  AdaBoostResult r = TrainAdaBoost(f.ctx, f.triples, options);
  // Count unique specs among the chosen rounds.
  size_t unique = 0;
  for (size_t i = 0; i < r.rounds.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (r.rounds[j].spec == r.rounds[i].spec) seen = true;
    }
    if (!seen) ++unique;
  }
  EXPECT_LT(unique, r.rounds.size());  // At least one coordinate reused.
}

TEST(AdaBoostOptionsTest, ReuseKnobIgnoredInQueryInsensitiveMode) {
  // QI mode has no intervals, so the reuse mechanism is disabled: with
  // identical seeds, any reuse_fraction must give identical training
  // runs.  (Random sampling may still re-pick a spec by chance; that is
  // not what this test checks.)
  Fixture f = Make(4, 800);
  AdaBoostOptions base;
  base.rounds = 20;
  base.query_sensitive = false;
  base.reuse_fraction = 0.0;
  AdaBoostOptions reusing = base;
  reusing.reuse_fraction = 0.9;  // Must be ignored.
  AdaBoostResult ra = TrainAdaBoost(f.ctx, f.triples, base);
  AdaBoostResult rb = TrainAdaBoost(f.ctx, f.triples, reusing);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_TRUE(ra.rounds[i].spec == rb.rounds[i].spec);
    EXPECT_DOUBLE_EQ(ra.rounds[i].alpha, rb.rounds[i].alpha);
  }
}

TEST(AdaBoostOptionsTest, PivotFractionZeroUsesOnlyReferences) {
  Fixture f = Make(5);
  AdaBoostOptions options;
  options.rounds = 10;
  options.pivot_fraction = 0.0;
  AdaBoostResult r = TrainAdaBoost(f.ctx, f.triples, options);
  for (const WeakClassifier& wc : r.rounds) {
    EXPECT_EQ(wc.spec.type, Embedding1DSpec::Type::kReference);
  }
}

TEST(AdaBoostOptionsTest, PivotFractionOneUsesOnlyPivots) {
  Fixture f = Make(6);
  AdaBoostOptions options;
  options.rounds = 10;
  options.pivot_fraction = 1.0;
  options.reuse_fraction = 0.0;
  AdaBoostResult r = TrainAdaBoost(f.ctx, f.triples, options);
  for (const WeakClassifier& wc : r.rounds) {
    EXPECT_EQ(wc.spec.type, Embedding1DSpec::Type::kPivot);
  }
}

TEST(AdaBoostOptionsTest, EarlyStopOnDegenerateData) {
  // All training objects identical: every 1D embedding is constant, no
  // classifier can achieve Z < 1, so training stops with no rounds.
  std::vector<Vector> pts(20, Vector{0.5, 0.5});
  ObjectOracle<Vector> oracle(std::move(pts), L2Distance);
  TrainingContext ctx = TrainingContext::Build(oracle, test::Iota(5),
                                               test::Iota(15, 5));
  // Degenerate distances: labels cannot be sampled (all ties), so build
  // triples by hand with arbitrary labels.
  std::vector<Triple> triples;
  for (uint32_t i = 0; i + 2 < 15; ++i) {
    triples.push_back({i, i + 1, i + 2, 1});
  }
  AdaBoostOptions options;
  options.rounds = 10;
  AdaBoostResult r = TrainAdaBoost(ctx, triples, options);
  EXPECT_TRUE(r.rounds.empty());
}

TEST(AdaBoostOptionsTest, MinSplitMassRespected) {
  Fixture f = Make(7, 1500);
  AdaBoostOptions options;
  options.rounds = 16;
  options.min_split_mass = 0.6;  // Intervals must keep >= 60% of weight.
  options.reuse_fraction = 0.0;
  AdaBoostResult r = TrainAdaBoost(f.ctx, f.triples, options);
  // First-round weights are uniform, so the first chosen interval must
  // cover >= 60% of the triples' query projections.
  ASSERT_FALSE(r.rounds.empty());
  const WeakClassifier& first = r.rounds[0];
  std::vector<double> values(f.ctx.num_train_objects());
  Eval1DOnAllTrainObjects(first.spec, f.ctx, values.data());
  size_t inside = 0;
  for (const Triple& t : f.triples) {
    if (first.Accepts(values[t.q])) ++inside;
  }
  EXPECT_GE(static_cast<double>(inside) /
                static_cast<double>(f.triples.size()),
            0.6 - 1e-9);
}

}  // namespace
}  // namespace qse
