#ifndef QSE_EMBEDDING_EMBEDDER_H_
#define QSE_EMBEDDING_EMBEDDER_H_

#include <cstddef>
#include <functional>

#include "src/distance/distance.h"

namespace qse {

/// Resolves DX(x, o) from the object being embedded to database object
/// `o`.  (Duplicated signature with core/qs_embedding.h so the baseline
/// embedding methods do not depend on the core library.)
using DxToDatabaseFn = std::function<double(size_t db_id)>;

/// Common interface of every embedding method in the repo (BoostMap
/// variants, FastMap, Lipschitz): map an object into R^d by evaluating a
/// bounded number of exact distances to database objects.
///
/// All methods in this family share the two properties the paper
/// highlights (Sec. 2): the embedding of a new query costs a small number
/// of DX evaluations, and the formulation is domain-independent.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Dimensionality d of the produced vectors.
  virtual size_t dims() const = 0;

  /// Embeds an object given its distances to database objects.  If
  /// `num_exact` is non-null it receives the number of *unique* exact
  /// distances evaluated — the per-query embedding cost in the paper's
  /// cost model.
  virtual Vector Embed(const DxToDatabaseFn& dx,
                       size_t* num_exact = nullptr) const = 0;

  /// Embedding cost without performing an embedding (number of unique
  /// database objects this embedder consults).
  virtual size_t EmbeddingCost() const = 0;
};

}  // namespace qse

#endif  // QSE_EMBEDDING_EMBEDDER_H_
