#ifndef QSE_DISTANCE_WEIGHTED_L1_H_
#define QSE_DISTANCE_WEIGHTED_L1_H_

#include "src/distance/distance.h"

namespace qse {

/// Weighted L1 distance sum_i w[i] * |a[i] - b[i]|.
///
/// This is the building block of the paper's D_out (Eq. 11): there the
/// weight vector is A(q), a function of the *query's* embedding, which
/// makes D_out asymmetric and non-metric.  The plain function below is
/// symmetric for a fixed w; query sensitivity lives in how the caller
/// chooses w (see QuerySensitiveEmbedding::QueryWeights).
double WeightedL1Distance(const Vector& a, const Vector& b, const Vector& w);

/// Span variant over raw contiguous buffers of n doubles; the Vector
/// function delegates here (four-lane accumulation, see weighted_l1.cc),
/// so both spellings agree bit for bit.
double WeightedL1DistanceSpan(const double* a, const double* b,
                              const double* w, size_t n);

}  // namespace qse

#endif  // QSE_DISTANCE_WEIGHTED_L1_H_
