#include "src/retrieval/filter_refine.h"

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/exact_knn.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct Pipeline {
  ObjectOracle<Vector> oracle;
  QuerySensitiveEmbedding model;
  EmbeddedDatabase db;
  std::vector<size_t> db_ids;
};

Pipeline MakePipeline(uint64_t seed) {
  auto oracle = test::MakePlaneOracle(80, seed);
  BoostMapConfig config;
  config.num_triples = 500;
  config.k1 = 3;
  config.boost.rounds = 16;
  config.boost.embeddings_per_round = 12;
  auto artifacts = TrainBoostMap(oracle, test::Iota(20),
                                 test::Iota(30, 20), config);
  EXPECT_TRUE(artifacts.ok());
  std::vector<size_t> db_ids = test::Iota(60);  // First 60 objects = db.
  QseEmbedderAdapter adapter(&artifacts->model);
  EmbeddedDatabase db = EmbedDatabase(adapter, oracle, db_ids);
  return {std::move(oracle), std::move(artifacts->model), std::move(db),
          std::move(db_ids)};
}

TEST(ExactKnnTest, MatchesNaiveScan) {
  auto oracle = test::MakePlaneOracle(30, 1);
  std::vector<size_t> db_ids = test::Iota(25);
  auto knn = ExactKnn(oracle, 28, db_ids, 5);
  ASSERT_EQ(knn.size(), 5u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].score, knn[i].score);
  }
  // Every non-returned object is at least as far as the 5th neighbor.
  for (size_t pos = 0; pos < db_ids.size(); ++pos) {
    bool in_result = false;
    for (const auto& r : knn) {
      if (r.index == pos) in_result = true;
    }
    if (!in_result) {
      EXPECT_GE(oracle.Distance(28, db_ids[pos]), knn.back().score);
    }
  }
}

TEST(ExactKnnTest, ExternalQueryVariant) {
  auto oracle = test::MakePlaneOracle(20, 2);
  Vector query = {0.5, 0.5};
  std::vector<size_t> db_ids = test::Iota(20);
  auto knn = ExactKnnExternal(
      [&](size_t id) { return oracle.DistanceToObject(query, id); }, db_ids,
      3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_LE(knn[0].score, knn[1].score);
}

TEST(EmbedDatabaseTest, RowsMatchDirectEmbedding) {
  Pipeline p = MakePipeline(10);
  for (size_t i : {0u, 7u, 59u}) {
    Vector direct = p.model.Embed([&](size_t o) {
      return o == p.db_ids[i] ? 0.0 : p.oracle.Distance(p.db_ids[i], o);
    });
    Vector row = p.db.RowVector(i);
    ASSERT_EQ(row.size(), direct.size());
    for (size_t d = 0; d < direct.size(); ++d) {
      EXPECT_DOUBLE_EQ(row[d], direct[d]);
    }
  }
}

TEST(EmbedDatabaseTest, ParallelEmbeddingMatchesSerial) {
  Pipeline p = MakePipeline(10);
  QseEmbedderAdapter adapter(&p.model);
  EmbeddedDatabase serial =
      EmbedDatabase(adapter, p.oracle, p.db_ids, /*num_threads=*/1);
  EmbeddedDatabase parallel =
      EmbedDatabase(adapter, p.oracle, p.db_ids, /*num_threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.dims(), parallel.dims());
  EXPECT_EQ(serial.data(), parallel.data());
}

TEST(FilterRefineTest, FullCandidateSetIsExact) {
  // With p = |db| the refine step sees every object: results must equal
  // brute-force exact k-NN regardless of embedding quality.
  Pipeline p = MakePipeline(11);
  QseEmbedderAdapter adapter(&p.model);
  QuerySensitiveScorer scorer(&p.model);
  RetrievalEngine retriever(&adapter, &scorer, &p.db, p.db_ids);
  for (size_t query_id = 70; query_id < 75; ++query_id) {
    auto dx = [&](size_t id) { return p.oracle.Distance(query_id, id); };
    auto result =
        retriever.Retrieve({dx, RetrievalOptions(5, p.db_ids.size())});
    ASSERT_TRUE(result.ok()) << result.status();
    auto exact = ExactKnn(p.oracle, query_id, p.db_ids, 5);
    ASSERT_EQ(result->neighbors.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(result->neighbors[i].index, exact[i].index);
      EXPECT_DOUBLE_EQ(result->neighbors[i].score, exact[i].score);
    }
  }
}

TEST(FilterRefineTest, CostAccounting) {
  Pipeline p = MakePipeline(12);
  QseEmbedderAdapter adapter(&p.model);
  QuerySensitiveScorer scorer(&p.model);
  RetrievalEngine retriever(&adapter, &scorer, &p.db, p.db_ids);
  auto dx = [&](size_t id) { return p.oracle.Distance(70, id); };
  auto result = retriever.Retrieve({dx, RetrievalOptions(3, 17)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->embedding_distances, p.model.EmbeddingCost());
  EXPECT_EQ(result->exact_distances, result->embedding_distances + 17);
  EXPECT_EQ(result->neighbors.size(), 3u);
}

TEST(FilterRefineTest, LargerPImprovesOrKeepsAccuracy) {
  Pipeline p = MakePipeline(13);
  QseEmbedderAdapter adapter(&p.model);
  QuerySensitiveScorer scorer(&p.model);
  RetrievalEngine retriever(&adapter, &scorer, &p.db, p.db_ids);
  size_t hits_small = 0, hits_large = 0;
  for (size_t query_id = 65; query_id < 80; ++query_id) {
    auto dx = [&](size_t id) { return p.oracle.Distance(query_id, id); };
    auto exact = ExactKnn(p.oracle, query_id, p.db_ids, 1);
    auto small = retriever.Retrieve({dx, RetrievalOptions(1, 3)});
    auto large = retriever.Retrieve({dx, RetrievalOptions(1, 30)});
    ASSERT_TRUE(small.ok() && large.ok());
    if (!small->neighbors.empty() &&
        small->neighbors[0].index == exact[0].index) {
      ++hits_small;
    }
    if (!large->neighbors.empty() &&
        large->neighbors[0].index == exact[0].index) {
      ++hits_large;
    }
  }
  EXPECT_GE(hits_large, hits_small);
  EXPECT_GE(hits_large, 13u);  // p = half the db on easy 2D data.
}

// p = 0 / oversized-p validation for this pipeline lives in the
// cross-surface parameterized suite: tests/request_validation_test.cc.

TEST(ScorerTest, L2ScorerMatchesSquaredEuclidean) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {3, 4}});
  L2Scorer scorer;
  std::vector<double> scores;
  scorer.Score({0, 0}, db, &scores);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
  EXPECT_DOUBLE_EQ(scores[2], 25.0);
}

TEST(ScorerTest, L1ScorerMatchesManhattan) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {3, 4}});
  L1Scorer scorer;
  std::vector<double> scores;
  scorer.Score({0, 0}, db, &scores);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
  EXPECT_DOUBLE_EQ(scores[2], 7.0);
}

TEST(ScorerTest, QuerySensitiveScorerMatchesModelDistance) {
  Pipeline p = MakePipeline(15);
  QuerySensitiveScorer scorer(&p.model);
  Vector fq = p.db.RowVector(0);
  std::vector<double> scores;
  scorer.Score(fq, p.db, &scores);
  for (size_t i = 0; i < p.db.size(); ++i) {
    EXPECT_NEAR(scores[i],
                p.model.QuerySensitiveDistance(fq, p.db.RowVector(i)), 1e-12);
  }
}

TEST(FilterRefineTest, FastMapPipelineWorksToo) {
  auto oracle = test::MakePlaneOracle(60, 16);
  FastMapOptions options;
  options.dims = 2;
  std::vector<size_t> db_ids = test::Iota(50);
  FastMapModel model = BuildFastMap(oracle, db_ids, options);
  EmbeddedDatabase db = EmbedDatabase(model, oracle, db_ids);
  L2Scorer scorer;
  RetrievalEngine retriever(&model, &scorer, &db, db_ids);
  size_t hits = 0;
  for (size_t query_id = 50; query_id < 60; ++query_id) {
    auto dx = [&](size_t id) { return oracle.Distance(query_id, id); };
    auto exact = ExactKnn(oracle, query_id, db_ids, 1);
    auto result = retriever.Retrieve({dx, RetrievalOptions(1, 10)});
    ASSERT_TRUE(result.ok()) << result.status();
    if (result->neighbors[0].index == exact[0].index) ++hits;
  }
  EXPECT_GE(hits, 8u);  // FastMap is near-exact on true 2D data.
}

}  // namespace
}  // namespace qse
