#ifndef QSE_EMBEDDING_LIPSCHITZ_H_
#define QSE_EMBEDDING_LIPSCHITZ_H_

#include <string>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/util/random.h"
#include "src/util/statusor.h"

namespace qse {

/// Options for building a Lipschitz embedding [7, 15].
struct LipschitzOptions {
  /// Output dimensionality (number of reference sets).
  size_t dims = 32;
  /// When true, reference-set sizes follow the Bourgain schedule
  /// 1, 2, 4, ..., 2^floor(log2 n) cyclically; when false every set has
  /// `fixed_set_size` members.
  bool bourgain_sizes = true;
  size_t fixed_set_size = 1;
  uint64_t seed = 5;
};

/// A Lipschitz embedding: coordinate i maps x to its distance to the
/// nearest member of reference set R_i,
///
///   F_i(x) = min_{r in R_i} DX(x, r).
///
/// With singleton sets this reduces to the reference-object embeddings
/// F^r of Eq. 1; with the Bourgain size schedule it is the classical
/// construction of [7] as popularized for retrieval by [15].  Distances
/// between Lipschitz vectors are measured with L1.
class LipschitzModel : public Embedder {
 public:
  LipschitzModel() = default;
  explicit LipschitzModel(std::vector<std::vector<uint32_t>> sets)
      : sets_(std::move(sets)) {}

  size_t dims() const override { return sets_.size(); }
  Vector Embed(const DxToDatabaseFn& dx,
               size_t* num_exact = nullptr) const override;
  size_t EmbeddingCost() const override;

  LipschitzModel Prefix(size_t d) const;

  /// Binary model persistence (the reference sets).
  Status Save(const std::string& path) const;
  static StatusOr<LipschitzModel> Load(const std::string& path);

  const std::vector<std::vector<uint32_t>>& sets() const { return sets_; }

 private:
  std::vector<std::vector<uint32_t>> sets_;  // Database ids per set.
};

/// Samples the reference sets from `sample_ids` (no distance evaluations
/// are needed to build the model — only to apply it).
LipschitzModel BuildLipschitz(const std::vector<size_t>& sample_ids,
                              const LipschitzOptions& options);

}  // namespace qse

#endif  // QSE_EMBEDDING_LIPSCHITZ_H_
