#include "src/persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/obs/metric_registry.h"
#include "src/util/crc32.h"
#include "src/util/serialize.h"
#include "src/util/timer.h"

namespace qse {
namespace persist {
namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// Decodes one record payload (the bytes the CRC already vouched for).
/// Structural violations are kDataLoss, exactly like the wire codec.
Status DecodeWalPayload(const std::string& payload, WalRecord* out) {
  ByteReader reader(payload);
  uint16_t version = 0;
  uint16_t op = 0;
  QSE_RETURN_IF_ERROR(reader.ReadU16(&version));
  if (version != kWalVersion) {
    return Status::DataLoss("unknown WAL record version " +
                            std::to_string(version));
  }
  QSE_RETURN_IF_ERROR(reader.ReadU16(&op));
  QSE_RETURN_IF_ERROR(reader.ReadU64(&out->seq));
  QSE_RETURN_IF_ERROR(reader.ReadU64(&out->db_id));
  switch (static_cast<WalOp>(op)) {
    case WalOp::kInsert:
      out->op = WalOp::kInsert;
      QSE_RETURN_IF_ERROR(reader.ReadDoubleVec(&out->row, kMaxWalDims));
      break;
    case WalOp::kRemove:
      out->op = WalOp::kRemove;
      out->row.clear();
      break;
    default:
      return Status::DataLoss("unknown WAL op " + std::to_string(op));
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("WAL record payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::ostringstream body;
  BinaryWriter writer(&body);
  writer.WriteU16(kWalVersion);
  writer.WriteU16(static_cast<uint16_t>(record.op));
  writer.WriteU64(record.seq);
  writer.WriteU64(record.db_id);
  if (record.op == WalOp::kInsert) writer.WriteDoubleVec(record.row);
  std::string payload = body.str();

  std::ostringstream frame;
  BinaryWriter header(&frame);
  header.WriteU32(kWalRecordMagic);
  header.WriteU32(static_cast<uint32_t>(payload.size()));
  header.WriteU32(Crc32(payload));
  header.WriteBytes(payload.data(), payload.size());
  return frame.str();
}

StatusOr<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return result;  // Missing file == empty log.
  std::ostringstream into;
  into << file.rdbuf();
  std::string bytes = into.str();
  if (bytes.empty()) return result;  // Zero-byte file == empty log.

  // The header: without a valid one there is no prefix to repair to, so
  // header corruption is kDataLoss regardless of repair policy.
  if (bytes.size() < kWalFileHeaderBytes) {
    return Status::DataLoss("WAL header truncated: " +
                            std::to_string(bytes.size()) + " bytes");
  }
  ByteReader header(bytes.data(), kWalFileHeaderBytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved = 0;
  QSE_RETURN_IF_ERROR(header.ReadU32(&magic));
  QSE_RETURN_IF_ERROR(header.ReadU16(&version));
  QSE_RETURN_IF_ERROR(header.ReadU16(&reserved));
  QSE_RETURN_IF_ERROR(header.ReadU64(&result.base_seq));
  if (magic != kWalFileMagic) {
    return Status::DataLoss("bad WAL file magic");
  }
  if (version != kWalVersion) {
    return Status::DataLoss("unknown WAL file version " +
                            std::to_string(version));
  }

  size_t pos = kWalFileHeaderBytes;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    // Frame header: magic, payload length, CRC.  Anything that does not
    // check out ends the valid prefix right here.
    if (bytes.size() - pos < kWalRecordHeaderBytes) {
      result.tail_status = Status::DataLoss("torn record header at offset " +
                                            std::to_string(pos));
      break;
    }
    ByteReader frame(bytes.data() + pos, kWalRecordHeaderBytes);
    uint32_t record_magic = 0, payload_len = 0, crc = 0;
    QSE_RETURN_IF_ERROR(frame.ReadU32(&record_magic));
    QSE_RETURN_IF_ERROR(frame.ReadU32(&payload_len));
    QSE_RETURN_IF_ERROR(frame.ReadU32(&crc));
    if (record_magic != kWalRecordMagic) {
      result.tail_status = Status::DataLoss("bad record magic at offset " +
                                            std::to_string(pos));
      break;
    }
    if (payload_len > kMaxWalRecordBytes) {
      // A lying length prefix: refuse before trusting it for anything.
      result.tail_status = Status::DataLoss(
          "implausible record length " + std::to_string(payload_len) +
          " at offset " + std::to_string(pos));
      break;
    }
    if (payload_len > bytes.size() - pos - kWalRecordHeaderBytes) {
      // Torn tail: the record claims more bytes than the file holds —
      // the normal shape of a crash mid-append.
      result.tail_status = Status::DataLoss("torn record payload at offset " +
                                            std::to_string(pos));
      break;
    }
    std::string payload =
        bytes.substr(pos + kWalRecordHeaderBytes, payload_len);
    if (Crc32(payload) != crc) {
      result.tail_status = Status::DataLoss("record CRC mismatch at offset " +
                                            std::to_string(pos));
      break;
    }
    WalRecord record;
    Status decoded = DecodeWalPayload(payload, &record);
    if (!decoded.ok()) {
      result.tail_status = decoded;
      break;
    }
    result.records.push_back(std::move(record));
    pos += kWalRecordHeaderBytes + payload_len;
    result.valid_bytes = pos;
  }
  result.dropped_bytes = bytes.size() - result.valid_bytes;
  return result;
}

WalWriter::WalWriter(int fd, std::string path, FsyncPolicy policy,
                     size_t fsync_every_n, uint64_t next_seq)
    : fd_(fd),
      path_(std::move(path)),
      policy_(policy),
      fsync_every_n_(fsync_every_n == 0 ? 1 : fsync_every_n),
      next_seq_(next_seq) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Best-effort flush of whatever the policy left unsynced.
    if (unsynced_records_ > 0 && policy_ != FsyncPolicy::kOff) {
      (void)::fsync(fd_);
    }
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, FsyncPolicy policy, size_t fsync_every_n,
    uint64_t offset, uint64_t base_seq, uint64_t next_seq) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) return ErrnoStatus("open WAL", path);
  // Drop anything past the valid prefix (a torn tail from the previous
  // incarnation) so new records append to a clean end-of-log.
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    Status status = ErrnoStatus("truncate WAL", path);
    ::close(fd);
    return status;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status status = ErrnoStatus("seek WAL", path);
    ::close(fd);
    return status;
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(fd, path, policy, fsync_every_n, next_seq));
  if (offset == 0) {
    std::ostringstream header;
    BinaryWriter w(&header);
    w.WriteU32(kWalFileMagic);
    w.WriteU16(kWalVersion);
    w.WriteU16(0);
    w.WriteU64(base_seq);
    std::string bytes = header.str();
    QSE_RETURN_IF_ERROR(writer->WriteFully(bytes.data(), bytes.size()));
    QSE_RETURN_IF_ERROR(writer->Sync());
  }
  return StatusOr<std::unique_ptr<WalWriter>>(std::move(writer));
}

Status WalWriter::WriteFully(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write WAL", path_);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  static obs::Counter* fsyncs =
      obs::MetricRegistry::Global().GetCounter("qse_persist_fsyncs_total");
  static obs::Histogram* fsync_ns =
      obs::MetricRegistry::Global().GetHistogram(
          "qse_persist_fsync_latency_ns", obs::DefaultLatencyBoundariesNs());
  const MonotonicClock::time_point start = MonotonicClock::now();
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync WAL", path_);
  fsyncs->Increment();
  fsync_ns->Record(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count()));
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::MaybeSync() {
  switch (policy_) {
    case FsyncPolicy::kEveryRecord:
      return Sync();
    case FsyncPolicy::kEveryN:
      if (unsynced_records_ >= fsync_every_n_) return Sync();
      return Status::OK();
    case FsyncPolicy::kOff:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Append(WalRecord* record) {
  static obs::Counter* records_total =
      obs::MetricRegistry::Global().GetCounter("qse_persist_wal_records_total");
  static obs::Counter* bytes_total =
      obs::MetricRegistry::Global().GetCounter("qse_persist_wal_bytes_total");
  record->seq = next_seq_;
  std::string bytes = EncodeWalRecord(*record);
  QSE_RETURN_IF_ERROR(WriteFully(bytes.data(), bytes.size()));
  ++next_seq_;
  ++unsynced_records_;
  records_total->Increment();
  bytes_total->Add(bytes.size());
  return MaybeSync();
}

Status WalWriter::ResetToBase(uint64_t base_seq) {
  if (::ftruncate(fd_, 0) != 0) return ErrnoStatus("truncate WAL", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) return ErrnoStatus("seek WAL", path_);
  std::ostringstream header;
  BinaryWriter w(&header);
  w.WriteU32(kWalFileMagic);
  w.WriteU16(kWalVersion);
  w.WriteU16(0);
  w.WriteU64(base_seq);
  std::string bytes = header.str();
  QSE_RETURN_IF_ERROR(WriteFully(bytes.data(), bytes.size()));
  next_seq_ = base_seq + 1;
  unsynced_records_ = 0;
  // The compacted log must be durable before the caller deletes or
  // overwrites anything the old log covered.
  return Sync();
}

}  // namespace persist
}  // namespace qse
