#ifndef QSE_BENCH_HARNESS_H_
#define QSE_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/obs/metric_registry.h"
#include "src/data/distance_cache.h"
#include "src/distance/series.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/evaluation.h"
#include "src/util/csv.h"

namespace qse {
namespace bench {

/// Parses --key=value command-line flags with defaults; unknown flags
/// abort with a usage message so typos do not silently run the default
/// experiment.
class Flags {
 public:
  Flags(int argc, char** argv);

  size_t GetSize(const std::string& key, size_t def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key, std::string def) const;
  bool GetBool(const std::string& key, bool def) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// A retrieval workload: one oracle over database + query objects, the
/// id split, and a human-readable name.  The oracle is wrapped in a
/// disk-persistent CachingOracle so the expensive DX evaluations are paid
/// once across bench binaries (cache files live in bench_cache/).
struct Workload {
  std::string name;
  std::unique_ptr<DistanceOracle> raw_oracle;    // Owns the objects.
  std::unique_ptr<CachingOracle> oracle;         // Wraps raw_oracle.
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
  std::string cache_path;

  /// Persists the distance cache (call after the experiment).
  void SaveCache() const;
};

/// Scale parameters shared by the digit and time-series workloads; see
/// EXPERIMENTS.md for how the defaults map to the paper's scale.
struct WorkloadScale {
  size_t db_size = 1200;
  size_t num_queries = 120;
  uint64_t seed = 2005;
};

/// The MNIST substitute: synthetic stroke digits under the Shape Context
/// Distance (paper Sec. 9, first testbed; DESIGN.md substitution #1).
Workload MakeDigitsWorkload(const WorkloadScale& scale);

/// The [32]-style time-series workload under constrained DTW with a 10%
/// band (paper Sec. 9, second testbed).  `fixed_length` selects the
/// equal-length variant needed by LB_Keogh.
Workload MakeTimeSeriesWorkload(const WorkloadScale& scale,
                                bool fixed_length = false);

/// Raw series access for benches that need the objects themselves (the
/// LB index experiment); generated with the same parameters/seed as
/// MakeTimeSeriesWorkload(fixed_length=true).
std::vector<Series> MakeFixedLengthSeries(const WorkloadScale& scale,
                                          size_t count, uint64_t salt);

/// Training budget for the BoostMap variants.
struct TrainingScale {
  size_t num_cand = 400;       // |C|.
  size_t num_train = 400;      // |Xtr|.
  size_t num_triples = 30000;  // Paper: 300k full / 10k quick.
  size_t rounds = 128;         // Boosting rounds J.
  size_t embeddings_per_round = 48;
  size_t k1 = 5;               // Sec. 6 (5 for MNIST, 9 for time series).
  uint64_t seed = 7;
};

/// One evaluated method: its name and the dimensionality-sweep ladder.
struct MethodLadder {
  std::string name;
  std::vector<LadderPoint> ladder;
};

/// Doubling prefix ladder {1, 2, 4, ..., max}.
std::vector<size_t> DoublingLadder(size_t max);

/// Trains one BoostMap variant (Ra/Se x QI/QS) on the workload and
/// evaluates the prefix ladder against the ground truth.
MethodLadder RunBoostMapVariant(const Workload& workload,
                                const GroundTruth& gt,
                                const std::string& name,
                                TripleSampling sampling, bool query_sensitive,
                                const TrainingScale& scale);

/// Builds FastMap on a database sample and evaluates its dims ladder.
MethodLadder RunFastMap(const Workload& workload, const GroundTruth& gt,
                        size_t dims, const TrainingScale& scale);

/// Ground truth with progress logging; |queries| x |db| exact distances
/// through the workload's cache.
GroundTruth ComputeWorkloadGroundTruth(const Workload& workload, size_t kmax);

/// Emits one paper-style figure table: rows = k values, columns = methods,
/// cells = optimal #exact distances at the given accuracy.  Also writes
/// CSV to bench_results/<stem>.csv.
void ReportAccuracyTable(const std::string& title, const std::string& stem,
                         const std::vector<MethodLadder>& methods,
                         const std::vector<size_t>& ks, double accuracy,
                         size_t db_size);

/// Ensures bench_results/ exists and returns the full path for a stem.
std::string ResultsPath(const std::string& stem);

/// Tail-latency summary of one measured configuration.  Computed with the
/// nearest-rank quantile (same definition as util/stats.h's
/// QuantileNearestRank), so p99 is an actual observed sample, not an
/// interpolation.
struct LatencyPercentiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Percentiles of a latency sample (any unit; empty input -> zeros).
LatencyPercentiles ComputeLatencyPercentiles(std::vector<double> latencies);

/// One benchmark line of a google-benchmark-compatible JSON document:
/// `real_time_ns` mirrors google-benchmark's "real_time" (mean), and
/// `extras` carries additional metrics — p50/p95/p99 tail latency, qps —
/// so tools/check_bench_regressions.py can gate on tails, not just means.
struct BenchJsonEntry {
  std::string name;
  double real_time_ns = 0;
  std::vector<std::pair<std::string, double>> extras;

  /// Attaches p50/p95/p99 (in nanoseconds) to this entry.
  void AddPercentiles(const LatencyPercentiles& p);
};

/// Writes `{"benchmarks": [...]}` in the google-benchmark JSON shape read
/// by tools/check_bench_regressions.py and the CI artifact tooling.
Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchJsonEntry>& entries);

/// Writes a metric-registry snapshot as the obs::MetricsJson document
/// ({"counters":...,"gauges":...,"histograms":...}) — the CI metrics
/// artifact tools/check_bench_regressions.py applies presence floors to.
Status WriteMetricsJson(const std::string& path,
                        const obs::MetricRegistry& registry);

/// Writes the same snapshot in Prometheus text exposition (0.0.4), the
/// scrape-shaped twin of WriteMetricsJson for dashboards and diffing.
Status WriteMetricsPrometheus(const std::string& path,
                              const obs::MetricRegistry& registry);

/// Writes the full k = 1..kmax cost series (one column per method) for a
/// fixed accuracy — the machine-readable form of one panel of Fig. 4/5.
void WriteSeriesCsv(const std::string& stem,
                    const std::vector<MethodLadder>& methods, size_t kmax,
                    double accuracy, size_t db_size);

/// Runs one full accuracy-vs-cost figure (Figs. 4 and 5): trains
/// FastMap, Ra-QI, Se-QI and Se-QS (adding Ra-QS when `include_ra_qs`),
/// prints one table per accuracy in `accuracies`, and writes per-panel
/// CSV series.  Returns the evaluated ladders for further reporting.
std::vector<MethodLadder> RunAccuracyFigure(
    const Workload& workload, const TrainingScale& scale,
    const std::string& stem, const std::vector<double>& accuracies,
    const std::vector<size_t>& print_ks, size_t kmax, bool include_ra_qs);

}  // namespace bench
}  // namespace qse

#endif  // QSE_BENCH_HARNESS_H_
