#include "src/retrieval/embedded_database.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

TEST(EmbeddedDatabaseTest, StartsEmpty) {
  EmbeddedDatabase db(4);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.dims(), 4u);
  EXPECT_TRUE(db.empty());
}

TEST(EmbeddedDatabaseTest, AppendStoresRowsContiguously) {
  EmbeddedDatabase db(3);
  EXPECT_EQ(db.Append({1, 2, 3}), 0u);
  EXPECT_EQ(db.Append({4, 5, 6}), 1u);
  EXPECT_EQ(db.size(), 2u);
  // One flat buffer, row-major.
  EXPECT_EQ(db.data(), (std::vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(db.row(1)[0], 4.0);
  EXPECT_EQ(db.row(1) - db.row(0), 3);  // Adjacent rows, no gaps.
}

TEST(EmbeddedDatabaseTest, FromRowsRoundTripsThroughRowVector) {
  std::vector<Vector> rows = {{0.5, -1}, {2, 3}, {4, 5}};
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  ASSERT_EQ(db.size(), 3u);
  ASSERT_EQ(db.dims(), 2u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), rows[i]);
  }
}

TEST(EmbeddedDatabaseTest, SetRowOverwritesInPlace) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 1}, {2, 2}});
  db.SetRow(0, {9, 8});
  EXPECT_EQ(db.RowVector(0), (Vector{9, 8}));
  EXPECT_EQ(db.RowVector(1), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveMiddleMovesLastRow) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 3u);  // Former last row now lives at slot 1.
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(1), (Vector{3, 3}));
  EXPECT_EQ(db.RowVector(2), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveLastMovesNothing) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 1u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.RowVector(0), (Vector{0, 0}));
}

TEST(EmbeddedDatabaseTest, ResizeZeroFillsNewRows) {
  EmbeddedDatabase db(2);
  db.Resize(3);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(2), (Vector{0, 0}));
  db.mutable_row(1)[0] = 7;
  EXPECT_EQ(db.RowVector(1), (Vector{7, 0}));
}

TEST(EmbeddedDatabaseTest, AppendAfterResizeKeepsData) {
  EmbeddedDatabase db(2);
  db.Resize(1);
  db.SetRow(0, {1, 2});
  EXPECT_EQ(db.Append({3, 4}), 1u);
  EXPECT_EQ(db.data(), (std::vector<double>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace qse
