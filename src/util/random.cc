#include "src/util/random.h"

#include <cassert>
#include <numeric>

namespace qse {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // Numerical edge: u == total.
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace qse
