// Async serving: the request-queue front end over RetrievalBackend.
//
// The engines answer caller-driven batches; nothing shapes *traffic*.
// AsyncRetrievalServer owns a backend behind Submit -> Future: a bounded
// multi-lane admission queue sheds overload with kResourceExhausted
// (lowest priority first), per-tenant quotas cap any one tenant's share
// of the queue, per-request deadlines turn late answers into
// kDeadlineExceeded (checked at dequeue and again before the refine step
// — never silently dropped), and a batcher thread coalesces concurrent
// submitters into adaptive micro-batches that RetrieveBatch spreads
// across cores.  Results for admitted, non-expired requests are
// bit-identical to calling the backend directly.
//
// Everything rides on one envelope: RetrievalRequest{dx,
// RetrievalOptions{k, p, priority, tenant_id, deadline, want_stats}}.
//
// Build: cmake --build build && ./build/examples/async_serving
#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"

int main() {
  using namespace qse;
  using namespace std::chrono_literals;

  // --- Data: random points in the unit square, FastMap into 8 dims,
  // served through the sharded engine (any RetrievalBackend works).
  const size_t n = 20000, num_queries = 48, k = 3, p = 200;
  Rng rng(42);
  std::vector<Vector> points;
  for (size_t i = 0; i < n + num_queries; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  ObjectOracle<Vector> oracle(std::move(points), L2Distance);
  std::vector<size_t> db_ids(n);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  FastMapOptions fm;
  fm.dims = 8;
  FastMapModel model = BuildFastMap(oracle, db_ids, fm);
  EmbeddedDatabase embedded = EmbedDatabase(model, oracle, db_ids);
  L2Scorer scorer;
  ShardedRetrievalEngine backend(&model, &scorer, embedded, db_ids, {});

  auto query_dx = [&oracle, n](size_t q) -> DxToDatabaseFn {
    size_t query_id = n + q;
    return [&oracle, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  };

  // --- The server: bounded admission, micro-batches up to 32, one
  // worker driving RetrieveBatch across all cores.  Two tenants share
  // the queue: "web" may hold up to half of it, "batch" a quarter.
  AsyncServerOptions options;
  options.queue_capacity = 256;
  options.max_batch = 32;
  options.tenant_quotas = {{"web", 0.5}, {"batch", 0.25}};
  AsyncRetrievalServer server(&backend, options);

  // --- A burst of concurrent submitters; futures resolve as batches
  // complete.  OnReady shows the callback API.
  std::printf("submitting %zu queries from 4 threads...\n", num_queries);
  std::atomic<size_t> callbacks{0};
  std::vector<Future<StatusOr<RetrievalResponse>>> futures(num_queries);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t q = t; q < num_queries; q += 4) {
        RetrievalOptions ro(k, p);
        ro.tenant_id = q % 3 == 0 ? "batch" : "web";
        ro.priority = q % 3 == 0 ? RequestPriority::kLow
                                 : RequestPriority::kNormal;
        ro.deadline = RetrievalOptions::DeadlineIn(500ms);
        futures[q] = server.Submit({query_dx(q), ro});
        futures[q].OnReady(
            [&callbacks](const StatusOr<RetrievalResponse>&) {
              callbacks.fetch_add(1);
            });
      }
    });
  }
  for (auto& t : submitters) t.join();

  // Blocking Wait API: consume results and verify against the backend.
  size_t identical = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    const StatusOr<RetrievalResponse>& got = futures[q].Get();
    auto want = backend.Retrieve({query_dx(q), RetrievalOptions(k, p)});
    if (got.ok() && want.ok() &&
        got->neighbors[0].index == want->neighbors[0].index &&
        got->neighbors[0].score == want->neighbors[0].score) {
      ++identical;
    }
  }
  std::printf("parity: %zu/%zu async answers bit-identical to direct "
              "Retrieve; %zu completion callbacks fired\n",
              identical, num_queries, callbacks.load());

  // --- Deadlines: a request that cannot be answered in time comes back
  // kDeadlineExceeded (here: already expired on arrival).
  RetrievalOptions tight(k, p);
  tight.tenant_id = "web";
  tight.deadline = RetrievalClock::now() - 1ms;
  auto late = server.Submit({query_dx(0), tight});
  std::printf("expired request -> %s\n",
              late.Get().status().ToString().c_str());

  // --- Tenancy: an unknown tenant is refused outright; a known tenant
  // is only refused once it holds its full share of the queue.
  RetrievalOptions unknown(k, p);
  unknown.tenant_id = "free-rider";
  auto rejected = server.Submit({query_dx(0), unknown});
  std::printf("unknown tenant -> %s\n",
              rejected.Get().status().ToString().c_str());

  // --- Stats: admission counters, per-lane and per-tenant breakdowns,
  // and the micro-batch size histogram (the adaptivity signal: idle
  // traffic batches at 1, bursts coalesce).
  ServerStats stats = server.stats();
  std::printf("stats: submitted %zu, admitted %zu, completed %zu, "
              "rejected %zu, shed %zu, expired %zu\n",
              stats.submitted, stats.admitted, stats.completed,
              stats.rejected, stats.shed, stats.expired);
  for (size_t l = 0; l < kNumPriorityLanes; ++l) {
    std::printf("  lane %-6s: submitted %3zu admitted %3zu shed %3zu "
                "completed %3zu\n",
                RequestPriorityName(static_cast<RequestPriority>(l)),
                stats.lanes[l].submitted, stats.lanes[l].admitted,
                stats.lanes[l].shed, stats.lanes[l].completed);
  }
  for (const TenantStats& t : stats.tenants) {
    std::printf("  tenant %-6s: limit %3zu submitted %3zu admitted %3zu "
                "rejected %3zu\n",
                t.tenant_id.c_str(), t.limit, t.submitted, t.admitted,
                t.rejected);
  }
  std::printf("batch sizes:");
  for (size_t i = 0; i < stats.batch_size_histogram.size(); ++i) {
    if (stats.batch_size_histogram[i] > 0) {
      std::printf(" %zux%zu", stats.batch_size_histogram[i], i + 1);
    }
  }
  std::printf("  (count x size)\n");

  // --- Graceful shutdown: drains admitted work, then rejects new
  // submits with FAILED_PRECONDITION.
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  auto after = server.Submit({query_dx(0), tight});
  std::printf("submit after shutdown -> %s\n",
              after.Get().status().ToString().c_str());
  return 0;
}
