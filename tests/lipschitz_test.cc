#include "src/embedding/lipschitz.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace qse {
namespace {

TEST(LipschitzTest, BuildShapes) {
  LipschitzOptions options;
  options.dims = 6;
  LipschitzModel model = BuildLipschitz(test::Iota(32), options);
  EXPECT_EQ(model.dims(), 6u);
  for (const auto& set : model.sets()) {
    EXPECT_GE(set.size(), 1u);
    EXPECT_LE(set.size(), 32u);
  }
}

TEST(LipschitzTest, BourgainSizesGrowGeometrically) {
  LipschitzOptions options;
  options.dims = 6;
  options.bourgain_sizes = true;
  LipschitzModel model = BuildLipschitz(test::Iota(32), options);
  // Schedule cycles 1, 2, 4, 8, 16, 32 for n = 32.
  EXPECT_EQ(model.sets()[0].size(), 1u);
  EXPECT_EQ(model.sets()[1].size(), 2u);
  EXPECT_EQ(model.sets()[2].size(), 4u);
  EXPECT_EQ(model.sets()[5].size(), 32u);
}

TEST(LipschitzTest, FixedSizeSets) {
  LipschitzOptions options;
  options.dims = 4;
  options.bourgain_sizes = false;
  options.fixed_set_size = 3;
  LipschitzModel model = BuildLipschitz(test::Iota(20), options);
  for (const auto& set : model.sets()) EXPECT_EQ(set.size(), 3u);
}

TEST(LipschitzTest, SingletonSetsReduceToReferenceEmbedding) {
  auto oracle = test::MakePlaneOracle(20, 1);
  LipschitzOptions options;
  options.dims = 5;
  options.bourgain_sizes = false;
  options.fixed_set_size = 1;
  LipschitzModel model = BuildLipschitz(test::Iota(20), options);
  Vector e = model.Embed([&](size_t o) { return oracle.Distance(0, o); });
  for (size_t i = 0; i < model.dims(); ++i) {
    EXPECT_DOUBLE_EQ(e[i], oracle.Distance(0, model.sets()[i][0]));
  }
}

TEST(LipschitzTest, CoordinateIsMinOverSet) {
  auto oracle = test::MakePlaneOracle(24, 2);
  LipschitzOptions options;
  options.dims = 4;
  options.bourgain_sizes = false;
  options.fixed_set_size = 5;
  LipschitzModel model = BuildLipschitz(test::Iota(24), options);
  Vector e = model.Embed([&](size_t o) { return oracle.Distance(3, o); });
  for (size_t i = 0; i < model.dims(); ++i) {
    double expected = 1e300;
    for (uint32_t id : model.sets()[i]) {
      expected = std::min(expected, oracle.Distance(3, id));
    }
    EXPECT_DOUBLE_EQ(e[i], expected);
  }
}

TEST(LipschitzTest, ContractionPropertyInMetricSpace) {
  // In a metric space, |F_i(x) - F_i(y)| <= D(x, y) for each Lipschitz
  // coordinate (the defining 1-Lipschitz property).
  auto oracle = test::MakePlaneOracle(30, 3);
  LipschitzOptions options;
  options.dims = 8;
  LipschitzModel model = BuildLipschitz(test::Iota(30), options);
  for (size_t x = 0; x < 10; ++x) {
    for (size_t y = 0; y < 10; ++y) {
      if (x == y) continue;
      Vector ex = model.Embed(
          [&](size_t o) { return o == x ? 0.0 : oracle.Distance(x, o); });
      Vector ey = model.Embed(
          [&](size_t o) { return o == y ? 0.0 : oracle.Distance(y, o); });
      for (size_t i = 0; i < model.dims(); ++i) {
        EXPECT_LE(std::fabs(ex[i] - ey[i]),
                  oracle.Distance(x, y) + 1e-9);
      }
    }
  }
}

TEST(LipschitzTest, EmbeddingCostIsUnionSize) {
  LipschitzOptions options;
  options.dims = 5;
  LipschitzModel model = BuildLipschitz(test::Iota(16), options);
  auto oracle = test::MakePlaneOracle(16, 4);
  size_t count = 0;
  model.Embed([&](size_t o) { return oracle.Distance(0, o); }, &count);
  EXPECT_EQ(count, model.EmbeddingCost());
}

TEST(LipschitzTest, PrefixTruncates) {
  LipschitzOptions options;
  options.dims = 6;
  LipschitzModel model = BuildLipschitz(test::Iota(16), options);
  LipschitzModel p = model.Prefix(2);
  EXPECT_EQ(p.dims(), 2u);
  EXPECT_EQ(p.sets()[0], model.sets()[0]);
  EXPECT_EQ(p.sets()[1], model.sets()[1]);
}

TEST(LipschitzTest, DeterministicBySeed) {
  LipschitzOptions options;
  options.dims = 4;
  options.seed = 42;
  LipschitzModel a = BuildLipschitz(test::Iota(20), options);
  LipschitzModel b = BuildLipschitz(test::Iota(20), options);
  EXPECT_EQ(a.sets(), b.sets());
}

}  // namespace
}  // namespace qse
