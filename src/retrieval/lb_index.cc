#include "src/retrieval/lb_index.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace qse {

LbDtwIndex::LbDtwIndex(std::vector<Series> database, double band_fraction)
    : database_(std::move(database)), band_fraction_(band_fraction) {
  QSE_CHECK_MSG(!database_.empty(), "empty database");
  const size_t len = database_[0].length();
  const size_t dims = database_[0].dims();
  for (const Series& s : database_) {
    QSE_CHECK_MSG(s.length() == len && s.dims() == dims,
                  "LB_Keogh requires fixed-length, fixed-dims series");
  }
  window_ = static_cast<long>(
      std::ceil(band_fraction_ * static_cast<double>(len)));
}

LbDtwIndex::Result LbDtwIndex::Search(const Series& query, size_t k) const {
  QSE_CHECK(query.length() == database_[0].length());
  QSE_CHECK(query.dims() == database_[0].dims());
  QSE_CHECK(k >= 1);
  k = std::min(k, database_.size());

  DtwEnvelope envelope = BuildEnvelope(query, window_);
  std::vector<ScoredIndex> by_lb(database_.size());
  for (size_t i = 0; i < database_.size(); ++i) {
    by_lb[i] = {i, LbKeogh(envelope, database_[i])};
  }
  std::sort(by_lb.begin(), by_lb.end());

  Result result;
  std::vector<ScoredIndex> best;  // Kept sorted ascending, size <= k.
  for (const ScoredIndex& cand : by_lb) {
    if (best.size() == k && cand.score > best.back().score) {
      break;  // All remaining lower bounds exceed the k-th best: done.
    }
    double exact =
        ConstrainedDtwWindow(query, database_[cand.index], window_);
    ++result.exact_evaluations;
    ScoredIndex entry{cand.index, exact};
    auto it = std::lower_bound(best.begin(), best.end(), entry);
    best.insert(it, entry);
    if (best.size() > k) best.pop_back();
  }
  result.neighbors = std::move(best);
  return result;
}

}  // namespace qse
