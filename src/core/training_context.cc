#include "src/core/training_context.h"

#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace qse {

TrainingContext TrainingContext::Build(const DistanceOracle& oracle,
                                       std::vector<size_t> candidate_ids,
                                       std::vector<size_t> train_ids) {
  QSE_CHECK(!candidate_ids.empty());
  QSE_CHECK(!train_ids.empty());
  TrainingContext ctx;
  ctx.candidate_ids_ = std::move(candidate_ids);
  ctx.train_ids_ = std::move(train_ids);

  const size_t nc = ctx.candidate_ids_.size();
  const size_t nt = ctx.train_ids_.size();
  ctx.cand_cand_ = Matrix(nc, nc);
  ctx.cand_train_ = Matrix(nc, nt);
  ctx.train_train_ = Matrix(nt, nt);

  // Candidate-candidate distances (needed by pivot embeddings, Eq. 2).
  // DX may be mildly asymmetric; we evaluate the (i, j) order and mirror,
  // which matches how the distance would be used at query time.
  ParallelFor(0, nc, [&](size_t i) {
    for (size_t j = i; j < nc; ++j) {
      double d = i == j ? 0.0
                        : oracle.Distance(ctx.candidate_ids_[i],
                                          ctx.candidate_ids_[j]);
      ctx.cand_cand_(i, j) = d;
      ctx.cand_cand_(j, i) = d;
    }
  });

  // Candidate-to-training-object distances.  When a candidate and a
  // training object are the same database object the distance is 0 by
  // definition.
  ParallelFor(0, nc, [&](size_t i) {
    for (size_t j = 0; j < nt; ++j) {
      size_t ci = ctx.candidate_ids_[i];
      size_t tj = ctx.train_ids_[j];
      ctx.cand_train_(i, j) = ci == tj ? 0.0 : oracle.Distance(ci, tj);
    }
  });

  // Training-object pairwise distances (triple labels + Sec. 6 sampler).
  ParallelFor(0, nt, [&](size_t i) {
    for (size_t j = i; j < nt; ++j) {
      double d = i == j
                     ? 0.0
                     : oracle.Distance(ctx.train_ids_[i], ctx.train_ids_[j]);
      ctx.train_train_(i, j) = d;
      ctx.train_train_(j, i) = d;
    }
  });
  return ctx;
}

}  // namespace qse
