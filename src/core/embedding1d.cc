#include "src/core/embedding1d.h"

#include <cassert>

namespace qse {

double PivotProjection(double d1, double d2, double d12) {
  assert(d12 > 0.0);
  return (d1 * d1 + d12 * d12 - d2 * d2) / (2.0 * d12);
}

double Eval1DOnTrainObject(const Embedding1DSpec& spec,
                           const TrainingContext& ctx, size_t o) {
  if (spec.type == Embedding1DSpec::Type::kReference) {
    return ctx.CandTrain(spec.c1, o);
  }
  double d12 = ctx.CandCand(spec.c1, spec.c2);
  return PivotProjection(ctx.CandTrain(spec.c1, o), ctx.CandTrain(spec.c2, o),
                         d12);
}

void Eval1DOnAllTrainObjects(const Embedding1DSpec& spec,
                             const TrainingContext& ctx, double* values) {
  const size_t nt = ctx.num_train_objects();
  if (spec.type == Embedding1DSpec::Type::kReference) {
    for (size_t o = 0; o < nt; ++o) values[o] = ctx.CandTrain(spec.c1, o);
    return;
  }
  const double d12 = ctx.CandCand(spec.c1, spec.c2);
  assert(d12 > 0.0);
  const double inv = 1.0 / (2.0 * d12);
  const double dd = d12 * d12;
  for (size_t o = 0; o < nt; ++o) {
    double d1 = ctx.CandTrain(spec.c1, o);
    double d2 = ctx.CandTrain(spec.c2, o);
    values[o] = (d1 * d1 + dd - d2 * d2) * inv;
  }
}

}  // namespace qse
