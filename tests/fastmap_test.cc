#include "src/embedding/fastmap.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/distance/lp.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace qse {
namespace {

TEST(FastMapTest, BuildProducesRequestedDims) {
  auto oracle = test::MakePlaneOracle(40, 1);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(oracle, test::Iota(40), options);
  EXPECT_EQ(model.dims(), 2u);
}

TEST(FastMapTest, StopsEarlyWhenSpaceExhausted) {
  // A 2D Euclidean space has no spread left after ~2 dimensions; asking
  // for many more must not produce garbage coordinates.
  auto oracle = test::MakePlaneOracle(30, 2);
  FastMapOptions options;
  options.dims = 20;
  FastMapModel model = BuildFastMap(oracle, test::Iota(30), options);
  EXPECT_LE(model.dims(), 20u);
  EXPECT_GE(model.dims(), 2u);
}

TEST(FastMapTest, PivotsAreDistinct) {
  auto oracle = test::MakePlaneOracle(30, 3);
  FastMapModel model = BuildFastMap(oracle, test::Iota(30), {});
  for (const auto& lv : model.levels()) {
    EXPECT_NE(lv.pivot_a, lv.pivot_b);
    EXPECT_GT(lv.dist_ab, 0.0);
  }
}

TEST(FastMapTest, EmbeddingPreservesEuclideanDistancesWell) {
  // On genuinely 2D Euclidean data a 2D FastMap embedding should
  // reconstruct pairwise distances almost exactly (it recovers an
  // isometry up to the pivot frame).
  auto oracle = test::MakePlaneOracle(25, 4);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(oracle, test::Iota(25), options);
  std::vector<Vector> embedded(25);
  for (size_t i = 0; i < 25; ++i) {
    embedded[i] = model.Embed(
        [&](size_t o) { return o == i ? 0.0 : oracle.Distance(i, o); });
  }
  std::vector<double> true_d, emb_d;
  for (size_t i = 0; i < 25; ++i) {
    for (size_t j = i + 1; j < 25; ++j) {
      true_d.push_back(oracle.Distance(i, j));
      emb_d.push_back(L2Distance(embedded[i], embedded[j]));
    }
  }
  EXPECT_GT(PearsonCorrelation(true_d, emb_d), 0.98);
}

TEST(FastMapTest, EmbedCostCountsUniquePivots) {
  auto oracle = test::MakePlaneOracle(30, 5);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(oracle, test::Iota(30), options);
  size_t count = 0;
  model.Embed([&](size_t o) { return oracle.Distance(0, o); }, &count);
  EXPECT_EQ(count, model.EmbeddingCost());
  EXPECT_LE(count, 2 * model.dims());
}

TEST(FastMapTest, PrefixIsTruncation) {
  auto oracle = test::MakePlaneOracle(40, 6);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(oracle, test::Iota(40), options);
  ASSERT_EQ(model.dims(), 2u);
  FastMapModel p1 = model.Prefix(1);
  EXPECT_EQ(p1.dims(), 1u);
  Vector full = model.Embed(
      [&](size_t o) { return oracle.Distance(3, o); });
  Vector pref = p1.Embed(
      [&](size_t o) { return oracle.Distance(3, o); });
  ASSERT_EQ(pref.size(), 1u);
  EXPECT_DOUBLE_EQ(pref[0], full[0]);
}

TEST(FastMapTest, DeterministicBySeed) {
  auto oracle = test::MakePlaneOracle(30, 7);
  FastMapOptions options;
  options.dims = 2;
  options.seed = 99;
  FastMapModel a = BuildFastMap(oracle, test::Iota(30), options);
  FastMapModel b = BuildFastMap(oracle, test::Iota(30), options);
  ASSERT_EQ(a.dims(), b.dims());
  for (size_t l = 0; l < a.dims(); ++l) {
    EXPECT_EQ(a.levels()[l].pivot_a, b.levels()[l].pivot_a);
    EXPECT_EQ(a.levels()[l].pivot_b, b.levels()[l].pivot_b);
  }
}

TEST(FastMapTest, HandlesNonMetricInputWithoutNan) {
  // A deliberately non-metric distance: squared Euclidean.  Residuals can
  // go negative; the clamp must keep coordinates finite.
  Rng rng(8);
  std::vector<Vector> pts;
  for (size_t i = 0; i < 20; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  ObjectOracle<Vector> oracle(std::move(pts), SquaredL2Distance);
  FastMapOptions options;
  options.dims = 4;
  FastMapModel model = BuildFastMap(oracle, test::Iota(20), options);
  for (size_t i = 0; i < 20; ++i) {
    Vector e = model.Embed(
        [&](size_t o) { return o == i ? 0.0 : oracle.Distance(i, o); });
    for (double v : e) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(FastMapTest, PivotEmbeddingsHitEndpoints) {
  auto oracle = test::MakePlaneOracle(30, 9);
  FastMapOptions options;
  options.dims = 1;
  FastMapModel model = BuildFastMap(oracle, test::Iota(30), options);
  ASSERT_EQ(model.dims(), 1u);
  const auto& lv = model.levels()[0];
  Vector ea = model.Embed([&](size_t o) {
    return o == lv.pivot_a ? 0.0 : oracle.Distance(lv.pivot_a, o);
  });
  Vector eb = model.Embed([&](size_t o) {
    return o == lv.pivot_b ? 0.0 : oracle.Distance(lv.pivot_b, o);
  });
  EXPECT_NEAR(ea[0], 0.0, 1e-9);
  EXPECT_NEAR(eb[0], lv.dist_ab, 1e-9);
}

}  // namespace
}  // namespace qse
