#include "src/core/triple_sampler.h"

#include <algorithm>

#include "src/util/logging.h"

namespace qse {

std::vector<std::vector<uint32_t>> NeighborOrdering(const Matrix& dist) {
  const size_t n = dist.rows();
  QSE_CHECK(dist.cols() == n);
  std::vector<std::vector<uint32_t>> order(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t>& row = order[i];
    row.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(static_cast<uint32_t>(j));
    }
    std::sort(row.begin(), row.end(), [&](uint32_t a, uint32_t b) {
      double da = dist(i, a), db = dist(i, b);
      if (da != db) return da < db;
      return a < b;
    });
  }
  return order;
}

std::vector<Triple> SampleRandomTriples(const Matrix& train_dist,
                                        size_t count, Rng* rng) {
  const size_t n = train_dist.rows();
  QSE_CHECK_MSG(n >= 3, "need at least 3 training objects");
  std::vector<Triple> triples;
  triples.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 100 + 1000;
  while (triples.size() < count && attempts < max_attempts) {
    ++attempts;
    uint32_t q = static_cast<uint32_t>(rng->Index(n));
    uint32_t a = static_cast<uint32_t>(rng->Index(n));
    uint32_t b = static_cast<uint32_t>(rng->Index(n));
    if (q == a || q == b || a == b) continue;
    double da = train_dist(q, a);
    double db = train_dist(q, b);
    if (da == db) continue;  // Type-0 triple; carries no label.
    Triple t;
    t.q = q;
    // Normalize so a is the closer object and y = +1, matching the
    // original BoostMap's convention ("with the constraint that q is
    // closer to a than to b", Sec. 3.2).
    if (da < db) {
      t.a = a;
      t.b = b;
    } else {
      t.a = b;
      t.b = a;
    }
    t.y = 1;
    triples.push_back(t);
  }
  QSE_CHECK_MSG(triples.size() == count,
                "failed to sample enough labelled triples; distance "
                "measure may be degenerate");
  return triples;
}

std::vector<Triple> SampleSelectiveTriples(const Matrix& train_dist,
                                           size_t count, size_t k1,
                                           Rng* rng) {
  const size_t n = train_dist.rows();
  QSE_CHECK_MSG(n >= 4, "need at least 4 training objects");
  QSE_CHECK_MSG(k1 >= 1, "k1 must be >= 1");
  QSE_CHECK_MSG(k1 + 1 <= n - 1,
                "k1 too large for the training set: need k1 + 1 <= |Xtr| - 1");
  std::vector<std::vector<uint32_t>> order = NeighborOrdering(train_dist);

  std::vector<Triple> triples;
  triples.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 100 + 1000;
  while (triples.size() < count && attempts < max_attempts) {
    ++attempts;
    uint32_t q = static_cast<uint32_t>(rng->Index(n));
    // a: the k'-th nearest neighbor of q with k' in [1, k1] (1-based).
    size_t ka = 1 + rng->Index(k1);
    // b: the k'-th nearest neighbor with k' in [k1+1, n-1].
    size_t kb = k1 + 1 + rng->Index(n - 1 - k1);
    uint32_t a = order[q][ka - 1];
    uint32_t b = order[q][kb - 1];
    if (train_dist(q, a) == train_dist(q, b)) continue;  // Tie at the cut.
    Triple t;
    t.q = q;
    t.a = a;
    t.b = b;
    t.y = 1;
    triples.push_back(t);
  }
  QSE_CHECK_MSG(triples.size() == count,
                "failed to sample enough selective triples");
  return triples;
}

}  // namespace qse
