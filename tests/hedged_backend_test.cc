// Hedged replica fan-out tests, against fake in-process replicas whose
// latency and failures the test scripts: first response wins, errors
// fail over immediately (a dead replica causes zero caller-visible
// failures), hedges fire for slow replicas, and writes broadcast.
#include "src/net/hedged_backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace qse {
namespace net {
namespace {

/// A scriptable replica: fixed scan result, configurable delay and
/// failure switch, call counting.
class FakeReplica : public RetrievalBackend {
 public:
  explicit FakeReplica(size_t id) : id_(id) {}

  mutable std::atomic<int> scan_calls{0};
  std::atomic<int> insert_calls{0};
  std::atomic<int> remove_calls{0};
  std::atomic<bool> fail{false};
  std::atomic<int> delay_ms{0};

  StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query,
      const RetrievalOptions& options) const override {
    (void)embedded_query;
    (void)options;
    ++scan_calls;
    if (delay_ms.load() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms.load()));
    }
    if (fail.load()) return Status::Unavailable("replica down");
    ScanCandidatesResult result;
    result.candidates = {{id_, 0.5}};  // identifies which replica served
    result.rows = 1;
    return result;
  }

  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override {
    (void)request;
    if (fail.load()) return Status::Unavailable("replica down");
    RetrievalResponse response;
    response.neighbors = {{id_, 0.5}};
    return response;
  }

  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override {
    (void)options;
    std::vector<RetrievalResponse> out(queries.size());
    for (auto& r : out) r.neighbors = {{id_, 0.5}};
    return out;
  }

  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override {
    (void)db_id;
    (void)dx;
    ++insert_calls;
    return fail.load() ? Status::Unavailable("replica down") : Status::OK();
  }

  Status InsertEmbedded(size_t db_id, const Vector& row) override {
    (void)db_id;
    (void)row;
    ++insert_calls;
    return fail.load() ? Status::Unavailable("replica down") : Status::OK();
  }

  Status Remove(size_t db_id) override {
    (void)db_id;
    ++remove_calls;
    return fail.load() ? Status::Unavailable("replica down") : Status::OK();
  }

  size_t size() const override { return fail.load() ? 0 : 10 + id_; }
  size_t db_id_of(size_t neighbor_index) const override {
    return neighbor_index;
  }

 private:
  size_t id_;
};

struct Fixture {
  std::vector<std::shared_ptr<FakeReplica>> fakes;
  std::unique_ptr<HedgedReplicaBackend> hedged;

  explicit Fixture(size_t n, HedgedBackendOptions options = {}) {
    std::vector<std::shared_ptr<RetrievalBackend>> replicas;
    for (size_t i = 0; i < n; ++i) {
      fakes.push_back(std::make_shared<FakeReplica>(i));
      replicas.push_back(fakes.back());
    }
    hedged = std::make_unique<HedgedReplicaBackend>(std::move(replicas),
                                                    options);
  }
};

RetrievalOptions ScanOpts() { return RetrievalOptions(1, 1); }

TEST(HedgedBackendTest, HealthyReplicasRoundRobinAndAllSucceed) {
  Fixture fx(2);
  for (int i = 0; i < 10; ++i) {
    auto scan = fx.hedged->ScanCandidates({0.0}, ScanOpts());
    ASSERT_TRUE(scan.ok()) << scan.status().message();
    ASSERT_EQ(scan->candidates.size(), 1u);
  }
  // Round-robin primaries: both replicas served some calls, and no
  // hedges fired for instant responses.
  EXPECT_GT(fx.fakes[0]->scan_calls.load(), 0);
  EXPECT_GT(fx.fakes[1]->scan_calls.load(), 0);
  EXPECT_EQ(fx.fakes[0]->scan_calls.load() + fx.fakes[1]->scan_calls.load(),
            10);
}

TEST(HedgedBackendTest, DeadReplicaCausesZeroCallerFailures) {
  Fixture fx(2);
  fx.fakes[0]->fail = true;  // one replica hard down
  for (int i = 0; i < 20; ++i) {
    auto scan = fx.hedged->ScanCandidates({0.0}, ScanOpts());
    ASSERT_TRUE(scan.ok()) << "call " << i << ": "
                           << scan.status().message();
    // Every response came from the live replica.
    ASSERT_EQ(scan->candidates.size(), 1u);
    EXPECT_EQ(scan->candidates[0].index, 1u);
  }
}

TEST(HedgedBackendTest, AllReplicasDownSurfacesTheError) {
  Fixture fx(3);
  for (auto& fake : fx.fakes) fake->fail = true;
  auto scan = fx.hedged->ScanCandidates({0.0}, ScanOpts());
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kUnavailable);
}

TEST(HedgedBackendTest, HedgeFiresAgainstSlowReplicaAndFastOneWins) {
  HedgedBackendOptions options;
  options.initial_hedge_delay = std::chrono::milliseconds(10);
  options.min_hedge_delay = std::chrono::milliseconds(1);
  Fixture fx(2, options);
  fx.fakes[0]->delay_ms = 200;
  fx.fakes[1]->delay_ms = 0;

  // Force replica 0 primary: round-robin starts at 0 for the first call.
  auto start = std::chrono::steady_clock::now();
  auto scan = fx.hedged->ScanCandidates({0.0}, ScanOpts());
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(scan.ok());
  // The fast replica's hedge won well before the slow primary finished.
  EXPECT_EQ(scan->candidates[0].index, 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            150);
  // Both replicas were attempted: primary plus one hedge.
  EXPECT_EQ(fx.fakes[0]->scan_calls.load(), 1);
  EXPECT_EQ(fx.fakes[1]->scan_calls.load(), 1);
}

TEST(HedgedBackendTest, HedgingDisabledWaitsOutTheSlowReplica) {
  HedgedBackendOptions options;
  options.enable_hedging = false;
  options.initial_hedge_delay = std::chrono::milliseconds(5);
  Fixture fx(2, options);
  fx.fakes[0]->delay_ms = 100;
  auto scan = fx.hedged->ScanCandidates({0.0}, ScanOpts());
  ASSERT_TRUE(scan.ok());
  // Served by the slow primary itself; the other replica was never
  // consulted.
  EXPECT_EQ(scan->candidates[0].index, 0u);
  EXPECT_EQ(fx.fakes[1]->scan_calls.load(), 0);
}

TEST(HedgedBackendTest, WritesBroadcastToAllReplicas) {
  Fixture fx(3);
  ASSERT_TRUE(fx.hedged->InsertEmbedded(1, {0.0}).ok());
  ASSERT_TRUE(fx.hedged->Remove(1).ok());
  for (auto& fake : fx.fakes) {
    EXPECT_EQ(fake->insert_calls.load(), 1);
    EXPECT_EQ(fake->remove_calls.load(), 1);
  }
  // A failing replica's error is reported but the rest still apply.
  fx.fakes[1]->fail = true;
  Status status = fx.hedged->InsertEmbedded(2, {0.0});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fx.fakes[0]->insert_calls.load(), 2);
  EXPECT_EQ(fx.fakes[2]->insert_calls.load(), 2);
}

TEST(HedgedBackendTest, SizeIsMaxOverReplicas) {
  Fixture fx(2);  // sizes 10 and 11
  EXPECT_EQ(fx.hedged->size(), 11u);
  fx.fakes[1]->fail = true;  // reports 0 when down
  EXPECT_EQ(fx.hedged->size(), 10u);
}

TEST(HedgedBackendTest, DestructionWaitsForStragglers) {
  // The losing slow attempt still runs when the winner returns; the
  // backend's destructor must block until it finishes rather than let
  // it touch freed state.  TSan (this suite runs under it in CI) would
  // flag a violation.
  HedgedBackendOptions options;
  options.initial_hedge_delay = std::chrono::milliseconds(5);
  options.min_hedge_delay = std::chrono::milliseconds(1);
  auto fx = std::make_unique<Fixture>(2, options);
  fx->fakes[0]->delay_ms = 80;
  auto scan = fx->hedged->ScanCandidates({0.0}, ScanOpts());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->candidates[0].index, 1u);
  fx.reset();  // destructor waits for the slow straggler
}

TEST(HedgedBackendTest, RetrieveAndBatchGoThroughTheHedgeDriver) {
  Fixture fx(2);
  fx.fakes[0]->fail = true;
  RetrievalRequest request;
  request.dx = [](size_t) { return 0.0; };
  request.options = RetrievalOptions(1, 1);
  auto result = fx.hedged->Retrieve(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors[0].index, 1u);

  std::vector<DxToDatabaseFn> queries(4, [](size_t) { return 0.0; });
  auto batch = fx.hedged->RetrieveBatch(queries, RetrievalOptions(1, 1));
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 4u);
  for (const auto& r : *batch) {
    EXPECT_EQ(r.neighbors[0].index, 1u);
  }
}

}  // namespace
}  // namespace net
}  // namespace qse
