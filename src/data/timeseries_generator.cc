#include "src/data/timeseries_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qse {

namespace {

/// Evaluates a series at fractional position t in [0, len-1] by linear
/// interpolation; out-of-range positions are clamped to the endpoints.
double SampleAt(const Series& s, double t, size_t d) {
  assert(s.length() > 0);
  if (t <= 0.0) return s.at(0, d);
  double max_t = static_cast<double>(s.length() - 1);
  if (t >= max_t) return s.at(s.length() - 1, d);
  size_t lo = static_cast<size_t>(std::floor(t));
  size_t hi = lo + 1 < s.length() ? lo + 1 : lo;
  double f = t - static_cast<double>(lo);
  return (1.0 - f) * s.at(lo, d) + f * s.at(hi, d);
}

}  // namespace

TimeSeriesGenerator::TimeSeriesGenerator(
    const TimeSeriesGeneratorParams& params, uint64_t seed)
    : params_(params), rng_(seed) {
  assert(params_.num_seeds > 0);
  assert(params_.dims > 0);
  assert(params_.base_length >= 8);
  seeds_.reserve(params_.num_seeds);
  for (size_t i = 0; i < params_.num_seeds; ++i) {
    seeds_.push_back(MakeSeed());
  }
}

Series TimeSeriesGenerator::MakeSeed() {
  const size_t n = params_.base_length;
  const size_t dims = params_.dims;
  std::vector<double> values(n * dims, 0.0);
  // Four seed shape families, mirroring the variety of the real seed
  // recordings in [32].
  size_t family = rng_.Index(4);
  for (size_t d = 0; d < dims; ++d) {
    switch (family) {
      case 0: {  // Sum of random sinusoids.
        size_t waves = 2 + rng_.Index(3);
        std::vector<double> amp(waves), freq(waves), phase(waves);
        for (size_t w = 0; w < waves; ++w) {
          amp[w] = rng_.Uniform(0.4, 1.2);
          freq[w] = rng_.Uniform(1.0, 6.0);
          phase[w] = rng_.Uniform(0.0, 2.0 * M_PI);
        }
        for (size_t t = 0; t < n; ++t) {
          double x = static_cast<double>(t) / static_cast<double>(n);
          double v = 0.0;
          for (size_t w = 0; w < waves; ++w) {
            v += amp[w] * std::sin(2.0 * M_PI * freq[w] * x + phase[w]);
          }
          values[t * dims + d] = v;
        }
        break;
      }
      case 1: {  // Smoothed random walk.
        double v = 0.0, smooth = 0.0;
        double drift = rng_.Gaussian(0.0, 0.02);
        for (size_t t = 0; t < n; ++t) {
          v += drift + rng_.Gaussian(0.0, 0.25);
          smooth = 0.85 * smooth + 0.15 * v;
          values[t * dims + d] = smooth;
        }
        break;
      }
      case 2: {  // Piecewise-linear ramps between random knots.
        size_t knots = 4 + rng_.Index(5);
        std::vector<double> kt(knots), kv(knots);
        for (size_t k = 0; k < knots; ++k) {
          kt[k] = static_cast<double>(k) / static_cast<double>(knots - 1);
          kv[k] = rng_.Uniform(-1.5, 1.5);
        }
        for (size_t t = 0; t < n; ++t) {
          double x = static_cast<double>(t) / static_cast<double>(n - 1);
          size_t k = 0;
          while (k + 2 < knots && kt[k + 1] < x) ++k;
          double f = (x - kt[k]) / (kt[k + 1] - kt[k]);
          values[t * dims + d] = (1.0 - f) * kv[k] + f * kv[k + 1];
        }
        break;
      }
      default: {  // Pulse train: Gaussian bumps at random positions.
        size_t pulses = 2 + rng_.Index(4);
        std::vector<double> centre(pulses), width(pulses), height(pulses);
        for (size_t p = 0; p < pulses; ++p) {
          centre[p] = rng_.Uniform(0.08, 0.92);
          width[p] = rng_.Uniform(0.02, 0.08);
          height[p] = rng_.Uniform(0.6, 1.8) * (rng_.Bernoulli(0.5) ? 1 : -1);
        }
        for (size_t t = 0; t < n; ++t) {
          double x = static_cast<double>(t) / static_cast<double>(n - 1);
          double v = 0.0;
          for (size_t p = 0; p < pulses; ++p) {
            double z = (x - centre[p]) / width[p];
            v += height[p] * std::exp(-0.5 * z * z);
          }
          values[t * dims + d] = v;
        }
        break;
      }
    }
  }
  Series s(dims, std::move(values));
  s.SubtractMean();
  return s;
}

Series TimeSeriesGenerator::MakeVariant(size_t seed_index) {
  const Series& seed = seeds_[seed_index % seeds_.size()];
  const size_t dims = seed.dims();
  const size_t seed_len = seed.length();

  // Target length: random compression/decompression in time.
  size_t target_len = params_.base_length;
  if (!params_.fixed_length && params_.length_jitter > 0.0) {
    double f = rng_.Uniform(1.0 - params_.length_jitter,
                            1.0 + params_.length_jitter);
    target_len = std::max<size_t>(
        8, static_cast<size_t>(std::llround(
               f * static_cast<double>(params_.base_length))));
  }

  // Smooth monotone time warp: cumulative sum of positive increments with
  // random log-scale wobble, normalized onto [0, seed_len - 1].  This
  // locally stretches some regions and compresses others.
  std::vector<double> increments(target_len);
  double wobble = 0.0;
  for (size_t t = 0; t < target_len; ++t) {
    wobble = 0.9 * wobble + rng_.Gaussian(0.0, params_.warp_strength * 0.3);
    increments[t] = std::exp(wobble);
  }
  std::vector<double> warp(target_len);
  double acc = 0.0;
  for (size_t t = 0; t < target_len; ++t) {
    acc += increments[t];
    warp[t] = acc;
  }
  // Normalize onto [0, seed_len - 1].  The first element must be captured
  // before the loop mutates it; clamp for floating-point safety.
  const double front = warp.front();
  double span = warp.back() - front;
  if (span <= 0.0) span = 1.0;
  const double top = static_cast<double>(seed_len - 1);
  for (size_t t = 0; t < target_len; ++t) {
    double pos = (warp[t] - front) / span * top;
    warp[t] = pos < 0.0 ? 0.0 : (pos > top ? top : pos);
  }

  std::vector<double> values(target_len * dims);
  for (size_t t = 0; t < target_len; ++t) {
    for (size_t d = 0; d < dims; ++d) {
      double v = SampleAt(seed, warp[t], d);
      v += rng_.Gaussian(0.0, params_.amplitude_noise);
      values[t * dims + d] = v;
    }
  }
  Series out(dims, std::move(values));
  out.SubtractMean();
  return out;
}

std::vector<Series> TimeSeriesGenerator::Generate(size_t count) {
  std::vector<Series> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(MakeVariant(i % seeds_.size()));
  }
  return out;
}

}  // namespace qse
